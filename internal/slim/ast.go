package slim

// This file defines the abstract syntax tree produced by the parser. The
// AST keeps source positions for diagnostics; semantic analysis happens in
// the model package, which lowers the AST to an sta.Network.

// Model is a parsed SLIM compilation unit.
type Model struct {
	// ComponentTypes maps type name to declaration.
	ComponentTypes map[string]*ComponentType
	// ComponentImpls maps "Type.Impl" to declaration.
	ComponentImpls map[string]*ComponentImpl
	// ErrorTypes maps error model type name to declaration.
	ErrorTypes map[string]*ErrorType
	// ErrorImpls maps "Type.Impl" to declaration.
	ErrorImpls map[string]*ErrorImpl
	// Root names the root component implementation ("Type.Impl").
	Root string
	// RootPos is the position of the root declaration.
	RootPos Pos
	// Extensions are the model-extension (fault injection) clauses in
	// declaration order.
	Extensions []*Extension
}

// ComponentType declares a component category and its features.
type ComponentType struct {
	Name     string
	Category string
	Features []*Feature
	Pos      Pos
}

// Feature is an event or data port.
type Feature struct {
	Name string
	// Out is true for "out" ports.
	Out bool
	// Event is true for event ports, false for data ports.
	Event bool
	// Type is the data port's type (data ports only).
	Type *DataType
	// Default is the data port's default value expression (optional).
	Default Expr
	// Compute defines a computed out port ("name: out data port T :=
	// expr"): the port's value is continuously the expression over the
	// component's scope. Computed ports cannot be assigned or connected
	// as targets.
	Compute Expr
	Pos     Pos
}

// DataType is a data declaration type.
type DataType struct {
	// Name is one of bool, int, real, clock, continuous.
	Name string
	// HasRange marks int[lo..hi].
	HasRange bool
	Lo, Hi   int64
	Pos      Pos
}

// ComponentImpl is a component implementation.
type ComponentImpl struct {
	// TypeName and ImplName split "Type.Impl".
	TypeName, ImplName string
	Subcomponents      []*Subcomponent
	Connections        []*Connection
	Modes              []*Mode
	Transitions        []*Transition
	Pos                Pos
}

// Name returns the qualified "Type.Impl" name.
func (c *ComponentImpl) Name() string { return c.TypeName + "." + c.ImplName }

// Subcomponent is a data or component subcomponent.
type Subcomponent struct {
	Name string
	// Data is set for data subcomponents.
	Data *DataType
	// Default is the data subcomponent's initial value (optional).
	Default Expr
	// ImplRef is "Type.Impl" for component subcomponents.
	ImplRef string
	// InModes restricts activation to the listed parent modes (empty =
	// always active).
	InModes []string
	Pos     Pos
}

// Connection connects two ports.
type Connection struct {
	// Event is true for event port connections.
	Event bool
	// From and To are port references: "port" or "sub.port".
	From, To []string
	// InModes restricts the connection to the listed parent modes.
	InModes []string
	Pos     Pos
}

// Mode is a nominal mode.
type Mode struct {
	Name    string
	Initial bool
	Urgent  bool
	// Invariant is the "while" expression (nil = true).
	Invariant Expr
	// Derivs are trajectory equations var' = constant.
	Derivs []Deriv
	Pos    Pos
}

// Deriv is one trajectory equation.
type Deriv struct {
	Var  string
	Rate Expr // must be a constant expression
	Pos  Pos
}

// Transition is a nominal mode transition.
type Transition struct {
	From, To string
	// Event is the triggering event port reference (nil = internal τ).
	Event []string
	// Guard is the "when" expression (nil = true).
	Guard Expr
	// Effects are the "then" assignments.
	Effects []Assign
	Pos     Pos
}

// Assign is one effect.
type Assign struct {
	// Target is a data reference: "x" or "sub.port".
	Target []string
	Value  Expr
	Pos    Pos
}

// ErrorType declares an error model's states.
type ErrorType struct {
	Name   string
	States []ErrorState
	Pos    Pos
}

// ErrorState is one error state.
type ErrorState struct {
	Name    string
	Initial bool
	Pos     Pos
}

// ErrorImpl is an error model implementation.
type ErrorImpl struct {
	TypeName, ImplName string
	Events             []*ErrorEvent
	Transitions        []*ErrorTransition
	Pos                Pos
}

// Name returns the qualified "Type.Impl" name.
func (e *ErrorImpl) Name() string { return e.TypeName + "." + e.ImplName }

// ErrorEventKind classifies error events.
type ErrorEventKind int

// Error event kinds.
const (
	// ErrEventInternal is a plain or Poisson-rated error event.
	ErrEventInternal ErrorEventKind = iota + 1
	// ErrEventPropagation synchronizes with equally named propagations
	// of related components.
	ErrEventPropagation
	// ErrEventReset synchronizes with the nominal event bound via
	// "reset on" in the extension clause (the paper's @activation).
	ErrEventReset
)

// ErrorEvent declares an error event.
type ErrorEvent struct {
	Name string
	Kind ErrorEventKind
	// HasRate marks "occurrence poisson <rate>".
	HasRate bool
	Rate    float64
	Pos     Pos
}

// ErrorTransition is an error state transition.
type ErrorTransition struct {
	From, To string
	Event    string
	// HasAfter marks a timed window "after lo .. hi": the transition is
	// enabled between lo and hi time units after entering From, and the
	// state must be left by hi.
	HasAfter bool
	Lo, Hi   float64
	Pos      Pos
}

// Extension attaches an error model implementation to a component instance
// and declares fault injections.
type Extension struct {
	// Target is the instance path relative to the root (e.g.
	// ["plat", "gps1"]); empty targets the root itself.
	Target []string
	// ErrorImplRef is "Type.Impl".
	ErrorImplRef string
	// ResetOn optionally names a nominal event port (relative to the
	// target instance) that reset events synchronize with.
	ResetOn []string
	// Injections are the per-state data overrides.
	Injections []*Injection
	Pos        Pos
}

// Injection overrides a data element while an error state is active.
type Injection struct {
	// State is the error state name.
	State string
	// Target is the data reference relative to the extended instance.
	Target []string
	// Value is the override expression (evaluated in the instance's
	// scope).
	Value Expr
	Pos   Pos
}

// Expr is a parsed (unresolved) expression.
type Expr interface {
	exprNode()
	// Position returns the source position.
	Position() Pos
}

// NumLit is a numeric literal (after unit scaling).
type NumLit struct {
	Value float64
	// IsInt marks literals written without a decimal point or unit.
	IsInt bool
	Pos   Pos
}

// BoolLit is true/false.
type BoolLit struct {
	Value bool
	Pos   Pos
}

// RefExpr is a (possibly dotted) name reference.
type RefExpr struct {
	Path []string
	Pos  Pos
}

// UnaryExpr is "not x" or "-x".
type UnaryExpr struct {
	Op  string // "not" or "-"
	X   Expr
	Pos Pos
}

// BinExpr is a binary operation.
type BinExpr struct {
	Op   string // + - * / mod and or = != < <= > >=
	L, R Expr
	Pos  Pos
}

// CondExpr is "if c then a else b".
type CondExpr struct {
	If, Then, Else Expr
	Pos            Pos
}

// InModesExpr is the mode predicate "path in modes (m1, m2)"; an empty
// path refers to the enclosing component.
type InModesExpr struct {
	Path  []string
	Modes []string
	Pos   Pos
}

func (*NumLit) exprNode()      {}
func (*BoolLit) exprNode()     {}
func (*RefExpr) exprNode()     {}
func (*UnaryExpr) exprNode()   {}
func (*BinExpr) exprNode()     {}
func (*CondExpr) exprNode()    {}
func (*InModesExpr) exprNode() {}

// Position implements Expr.
func (e *NumLit) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *BoolLit) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *RefExpr) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *UnaryExpr) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *BinExpr) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *CondExpr) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *InModesExpr) Position() Pos { return e.Pos }
