package slim

import (
	"errors"
	"fmt"
)

// Error is a frontend error carrying the source position it refers to. The
// lexer and parser return *Error values so that downstream tooling (the
// linter in particular) can attach precise positions to diagnostics instead
// of parsing them back out of message strings.
type Error struct {
	Pos Pos
	Msg string
}

// Error implements the error interface with the package's historical
// "slim: line:col: message" rendering.
func (e *Error) Error() string { return fmt.Sprintf("slim: %s: %s", e.Pos, e.Msg) }

// PosOf extracts the source position carried by err. ok is false when err
// has no *Error in its chain.
func PosOf(err error) (Pos, bool) {
	var e *Error
	if errors.As(err, &e) {
		return e.Pos, true
	}
	return Pos{}, false
}
