package strategy

import (
	"math"
	"testing"

	"slimsim/internal/intervals"
	"slimsim/internal/rng"
)

// Tie-break tests: the edge cases where strategies must make a precise,
// documented choice — unbounded invariants, open invariant bounds, and
// several moves enabled at the very same instant.

// TestMaxTimeUnboundedInvariantCapsAtHorizon pins the cap() rule: when the
// invariants allow unbounded delay, MaxTime waits one unit past the
// property horizon so the bound is strictly exceeded and the property
// decides.
func TestMaxTimeUnboundedInvariantCapsAtHorizon(t *testing.T) {
	ctx := &Context{
		MaxDelay:    math.Inf(1),
		MaxAttained: true,
		Horizon:     40,
		Windows: []intervals.Set{
			intervals.FromInterval(intervals.AtLeast(10)),
		},
		Rng: rng.New(1),
	}
	c, err := MaxTime{}.Choose(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c.Delay != 41 {
		t.Errorf("MaxTime delay = %v, want Horizon+1 = 41", c.Delay)
	}
	if len(c.Enabled) != 1 || c.Enabled[0] != 0 {
		t.Errorf("MaxTime enabled = %v, want [0] (window reaches past the horizon)", c.Enabled)
	}
	if c.Timelocked {
		t.Error("MaxTime reported a timelock with an enabled window")
	}
}

// TestMaxTimeOpenInvariantNudgesInward pins the epsNudge rule: when the
// invariant bound itself is not attainable (open invariant), MaxTime backs
// off by the nudge instead of violating the invariant.
func TestMaxTimeOpenInvariantNudgesInward(t *testing.T) {
	ctx := &Context{
		MaxDelay:    5,
		MaxAttained: false, // invariant is a strict bound: delay < 5
		Horizon:     100,
		Windows: []intervals.Set{
			intervals.FromInterval(intervals.ClosedOpen(1, 5)),
		},
		Rng: rng.New(1),
	}
	c, err := MaxTime{}.Choose(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if want := 5 - 1e-9; c.Delay != want {
		t.Errorf("MaxTime delay = %v, want %v (5 minus the nudge)", c.Delay, want)
	}
	if len(c.Enabled) != 1 {
		t.Errorf("MaxTime enabled = %v, want the nudged instant inside the window", c.Enabled)
	}
}

// simultaneousCtx has two moves whose windows open at the same instant
// and a third that opens later — the underspecification-of-choice case.
func simultaneousCtx(seed uint64) *Context {
	return &Context{
		MaxDelay:    10,
		MaxAttained: true,
		Horizon:     100,
		Windows: []intervals.Set{
			intervals.FromInterval(intervals.Closed(2, 10)),
			intervals.FromInterval(intervals.Closed(2, 6)),
			intervals.FromInterval(intervals.Closed(7, 10)),
		},
		Rng: rng.New(seed),
	}
}

// TestASAPReturnsAllSimultaneouslyEnabled pins that ASAP does not break
// the choice tie itself: every move enabled at the earliest instant is
// handed to the engine, which picks uniformly.
func TestASAPReturnsAllSimultaneouslyEnabled(t *testing.T) {
	c, err := ASAP{}.Choose(simultaneousCtx(1))
	if err != nil {
		t.Fatal(err)
	}
	if c.Delay != 2 {
		t.Errorf("ASAP delay = %v, want 2", c.Delay)
	}
	if len(c.Enabled) != 2 || c.Enabled[0] != 0 || c.Enabled[1] != 1 {
		t.Errorf("ASAP enabled = %v, want [0 1] (both moves open at 2; move 2 opens later)", c.Enabled)
	}
}

// TestLocalIgnoresGuardsOnSimultaneousSets pins Local's contract against
// ASAP's on the same context: Local samples the delay from everything the
// invariants allow, so the enabled set is whatever happens to contain the
// sampled instant — including nobody.
func TestLocalIgnoresGuardsOnSimultaneousSets(t *testing.T) {
	sawEmpty, sawNonEmpty := false, false
	for seed := uint64(0); seed < 200; seed++ {
		ctx := simultaneousCtx(seed)
		c, err := Local{}.Choose(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if c.Delay < 0 || c.Delay > 10 {
			t.Fatalf("Local delay %v outside the invariant range [0,10]", c.Delay)
		}
		for _, i := range c.Enabled {
			if !ctx.Windows[i].Contains(c.Delay) {
				t.Fatalf("Local enabled move %d whose window does not contain %v", i, c.Delay)
			}
		}
		if len(c.Enabled) == 0 {
			sawEmpty = true
		} else {
			sawNonEmpty = true
		}
	}
	if !sawEmpty || !sawNonEmpty {
		t.Errorf("Local never varied the enabled set (empty=%v nonempty=%v); it must ignore guards",
			sawEmpty, sawNonEmpty)
	}
}

// TestChoiceDeterministicUnderFixedSeed pins reproducibility: with equal
// seeds every strategy makes the identical decision sequence, including
// the random ones.
func TestChoiceDeterministicUnderFixedSeed(t *testing.T) {
	for _, strat := range []Strategy{ASAP{}, MaxTime{}, Progressive{}, Local{}} {
		for seed := uint64(1); seed < 20; seed++ {
			a, err := strat.Choose(simultaneousCtx(seed))
			if err != nil {
				t.Fatal(err)
			}
			b, err := strat.Choose(simultaneousCtx(seed))
			if err != nil {
				t.Fatal(err)
			}
			if a.Delay != b.Delay || len(a.Enabled) != len(b.Enabled) {
				t.Fatalf("%s: two runs with seed %d differ: %+v vs %+v", strat.Name(), seed, a, b)
			}
			for i := range a.Enabled {
				if a.Enabled[i] != b.Enabled[i] {
					t.Fatalf("%s: enabled sets differ under seed %d", strat.Name(), seed)
				}
			}
		}
	}
}

// TestUniformChoiceDeterministic pins the generator behind the engine's
// uniform pick among simultaneously enabled moves: equal seeds give equal
// picks, and both branches are reachable across seeds. (The engine-level
// counterpart, driving a full model with a two-way tie, lives in
// internal/difftest.)
func TestUniformChoiceDeterministic(t *testing.T) {
	src := rng.New(7)
	first := src.Choose(2)
	same := rng.New(7).Choose(2)
	if first != same {
		t.Fatalf("rng.Choose differs under equal seeds: %d vs %d", first, same)
	}
	saw := map[int]bool{}
	for seed := uint64(0); seed < 50; seed++ {
		saw[rng.New(seed).Choose(2)] = true
	}
	if !saw[0] || !saw[1] {
		t.Fatalf("uniform choice never took both branches across 50 seeds: %v", saw)
	}
}
