// Package strategy implements the simulator's resolution of
// non-determinism (paper §III-B). The input model may leave open both
// *when* the next discrete transition fires (underspecification of time)
// and *which* transition fires (underspecification of choice). A Strategy
// resolves the former; the latter is always resolved uniformly
// (equiprobability) among the transitions enabled at the chosen instant.
//
// Four automated strategies are provided, mirroring the paper:
//
//   - ASAP delays to the first instant any transition becomes enabled
//     ("urgent" semantics, as in MODES).
//   - Progressive samples uniformly from the exact union of enabling
//     intervals (as in UPPAAL-SMC).
//   - Local ignores guards and samples uniformly from the delays the
//     current invariants allow.
//   - MaxTime waits as long as the invariants permit (useful for finding
//     actionlocks).
//
// A fifth, Input, defers every decision to a user-supplied callback,
// reproducing the interactive mode of the tool.
package strategy

import (
	"fmt"
	"math"

	"slimsim/internal/intervals"
	"slimsim/internal/rng"
)

// Context presents one scheduling decision to a strategy. All windows are
// pre-intersected with the invariant-allowed delay range [0, MaxDelay].
type Context struct {
	// MaxDelay is the invariant bound D (possibly +inf).
	MaxDelay float64
	// MaxAttained reports whether delaying exactly MaxDelay is allowed.
	MaxAttained bool
	// Horizon is the remaining time budget of the property (bound − now);
	// used to cap unbounded waits. Always finite and ≥ 0.
	Horizon float64
	// Windows holds, per candidate guarded move, the delay set at which
	// the move is enabled.
	Windows []intervals.Set
	// Labels describes each candidate move for interactive display;
	// it is parallel to Windows and may be nil for automated strategies.
	Labels []string
	// Rng drives the strategy's random choices.
	Rng *rng.Source
	// EnabledBuf is an optional reusable backing array for
	// Choice.Enabled. When the engine reuses one Context across steps,
	// enabled-move collection stops allocating; the Enabled slice of a
	// Choice is then only valid until the next Choose call.
	EnabledBuf []int
}

// Choice is a strategy's decision.
type Choice struct {
	// Delay is the amount of time to let pass before acting.
	Delay float64
	// Enabled lists the indices of candidate moves enabled after Delay;
	// the engine picks among them uniformly. It may be empty, in which
	// case the engine only advances time.
	Enabled []int
	// Timelocked reports that no candidate is enabled at any allowed
	// delay; Delay then holds the wait the engine should still perform
	// (to let exponential competitors fire or the property bound
	// expire).
	Timelocked bool
}

// Strategy resolves underspecification of time.
type Strategy interface {
	// Name returns the CLI name of the strategy.
	Name() string
	// Choose picks a delay and the eligible moves.
	Choose(ctx *Context) (Choice, error)
}

// epsNudge is the tie-breaking nudge used when an enabling window is
// left-open and its infimum is therefore not attainable.
const epsNudge = 1e-9

// cap returns the effective maximum wait: the invariant bound, or the
// property horizon (plus a nudge so the bound is strictly exceeded and the
// property decides) when invariants allow unbounded delay.
func (c *Context) cap() float64 {
	if math.IsInf(c.MaxDelay, 1) {
		return c.Horizon + 1
	}
	return c.MaxDelay
}

// enabledAt collects the candidate moves whose window contains d into the
// context's reusable buffer.
func (c *Context) enabledAt(d float64) []int {
	out := c.EnabledBuf[:0]
	for i, w := range c.Windows {
		if w.Contains(d) {
			out = append(out, i)
		}
	}
	c.EnabledBuf = out
	return out
}

// unionWindows returns the union of all enabling windows.
func unionWindows(windows []intervals.Set) intervals.Set {
	u := intervals.EmptySet()
	for _, w := range windows {
		u = u.Union(w)
	}
	return u
}

// ASAP implements the urgent strategy: the first instant at which any
// discrete transition is enabled is chosen; among the transitions enabled
// there one is selected uniformly by the engine.
type ASAP struct{}

var _ Strategy = ASAP{}

// Name implements Strategy.
func (ASAP) Name() string { return "asap" }

// Choose implements Strategy.
func (ASAP) Choose(ctx *Context) (Choice, error) {
	u := unionWindows(ctx.Windows)
	if u.Empty() {
		return Choice{Delay: ctx.cap(), Timelocked: true}, nil
	}
	inf, attained := u.Inf()
	d := inf
	if !attained {
		d = inf + epsNudge
	}
	enabled := ctx.enabledAt(d)
	if len(enabled) == 0 {
		// The nudge overshot an isolated point; fall back to the
		// infimum itself.
		d = inf
		enabled = ctx.enabledAt(d)
	}
	return Choice{Delay: d, Enabled: enabled}, nil
}

// MaxTime delays as much as the invariants allow before acting.
type MaxTime struct{}

var _ Strategy = MaxTime{}

// Name implements Strategy.
func (MaxTime) Name() string { return "maxtime" }

// Choose implements Strategy.
func (MaxTime) Choose(ctx *Context) (Choice, error) {
	u := unionWindows(ctx.Windows)
	if u.Empty() {
		return Choice{Delay: ctx.cap(), Timelocked: true}, nil
	}
	d := ctx.cap()
	if !ctx.MaxAttained && !math.IsInf(ctx.MaxDelay, 1) {
		d -= epsNudge
	}
	// No fallback: if nothing is enabled at the maximal delay, the
	// engine just lets the time pass — possibly stranding the model,
	// which is precisely how MaxTime exposes actionlocks (§III-B).
	return Choice{Delay: d, Enabled: ctx.enabledAt(d)}, nil
}

// Progressive samples the delay uniformly from the union of the exact
// enabling intervals of all candidate moves.
type Progressive struct{}

var _ Strategy = Progressive{}

// Name implements Strategy.
func (Progressive) Name() string { return "progressive" }

// Choose implements Strategy.
func (Progressive) Choose(ctx *Context) (Choice, error) {
	u := unionWindows(ctx.Windows)
	if u.Empty() {
		return Choice{Delay: ctx.cap(), Timelocked: true}, nil
	}
	// Clip unbounded enabling sets to the horizon so the uniform
	// distribution exists.
	clip := intervals.FromInterval(intervals.Closed(0, ctx.cap()))
	clipped := u.Intersect(clip)
	if clipped.Empty() {
		return Choice{Delay: ctx.cap(), Timelocked: true}, nil
	}
	d, ok := clipped.SampleUniform(ctx.Rng.Float64())
	if !ok {
		return Choice{}, fmt.Errorf("strategy: progressive could not sample from %v", clipped)
	}
	enabled := ctx.enabledAt(d)
	if len(enabled) == 0 {
		// Sampled a boundary point excluded by openness; nudge
		// inward.
		if inf, _ := clipped.Inf(); inf <= d {
			d += epsNudge
		}
		enabled = ctx.enabledAt(d)
	}
	return Choice{Delay: d, Enabled: enabled}, nil
}

// Local samples the delay uniformly from everything the invariants allow,
// ignoring guards; nothing may be enabled at the sampled instant, in which
// case the engine just lets time pass and asks again.
type Local struct{}

var _ Strategy = Local{}

// Name implements Strategy.
func (Local) Name() string { return "local" }

// Choose implements Strategy.
func (Local) Choose(ctx *Context) (Choice, error) {
	u := unionWindows(ctx.Windows)
	if u.Empty() {
		return Choice{Delay: ctx.cap(), Timelocked: true}, nil
	}
	d := ctx.Rng.Uniform(0, ctx.cap())
	return Choice{Delay: d, Enabled: ctx.enabledAt(d)}, nil
}

// Input defers decisions to a callback — the paper's interactive strategy.
// The callback receives the context and returns the chosen delay; the
// enabled set is derived from it. The engine's uniform pick among enabled
// moves can be overridden by returning a single-element preference.
type Input struct {
	// Ask returns the delay to schedule and, optionally, the index of
	// the specific move to fire (-1 to let the engine pick uniformly).
	Ask func(ctx *Context) (delay float64, move int, err error)
}

var _ Strategy = Input{}

// Name implements Strategy.
func (Input) Name() string { return "input" }

// Choose implements Strategy.
func (s Input) Choose(ctx *Context) (Choice, error) {
	if s.Ask == nil {
		return Choice{}, fmt.Errorf("strategy: input strategy has no callback")
	}
	d, move, err := s.Ask(ctx)
	if err != nil {
		return Choice{}, fmt.Errorf("strategy: input callback: %w", err)
	}
	if d < 0 {
		return Choice{}, fmt.Errorf("strategy: input callback chose negative delay %g", d)
	}
	if move >= 0 {
		if move >= len(ctx.Windows) {
			return Choice{}, fmt.Errorf("strategy: input callback chose move %d of %d", move, len(ctx.Windows))
		}
		if !ctx.Windows[move].Contains(d) {
			return Choice{}, fmt.Errorf("strategy: input callback chose move %d which is not enabled after %g", move, d)
		}
		return Choice{Delay: d, Enabled: []int{move}}, nil
	}
	return Choice{Delay: d, Enabled: ctx.enabledAt(d)}, nil
}

// ByName returns the automated strategy with the given CLI name.
func ByName(name string) (Strategy, error) {
	switch name {
	case "asap":
		return ASAP{}, nil
	case "progressive":
		return Progressive{}, nil
	case "local":
		return Local{}, nil
	case "maxtime":
		return MaxTime{}, nil
	default:
		return nil, fmt.Errorf("strategy: unknown strategy %q (want asap, progressive, local or maxtime)", name)
	}
}
