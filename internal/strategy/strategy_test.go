package strategy

import (
	"errors"
	"math"
	"testing"

	"slimsim/internal/intervals"
	"slimsim/internal/rng"
)

// gpsCtx models the paper's running example: repair enabled on [200, 300]
// with invariant bound 300 (Fig. 2's transient fault).
func gpsCtx(seed uint64) *Context {
	return &Context{
		MaxDelay:    300,
		MaxAttained: true,
		Horizon:     1e6,
		Windows: []intervals.Set{
			intervals.FromInterval(intervals.Closed(200, 300)),
		},
		Rng: rng.New(seed),
	}
}

func TestASAPPicksEarliest(t *testing.T) {
	c, err := ASAP{}.Choose(gpsCtx(1))
	if err != nil {
		t.Fatal(err)
	}
	if c.Delay != 200 {
		t.Errorf("ASAP delay = %v, want 200 (paper: schedules repair at 200 msec)", c.Delay)
	}
	if len(c.Enabled) != 1 || c.Enabled[0] != 0 {
		t.Errorf("ASAP enabled = %v, want [0]", c.Enabled)
	}
}

func TestMaxTimePicksLatest(t *testing.T) {
	c, err := MaxTime{}.Choose(gpsCtx(1))
	if err != nil {
		t.Fatal(err)
	}
	if c.Delay != 300 {
		t.Errorf("MaxTime delay = %v, want 300 (paper: schedules repair at 300 msec)", c.Delay)
	}
	if len(c.Enabled) != 1 {
		t.Errorf("MaxTime enabled = %v, want [0]", c.Enabled)
	}
}

func TestProgressiveSamplesGuardInterval(t *testing.T) {
	// Paper: Progressive uniformly selects from [200, 300].
	for seed := uint64(0); seed < 50; seed++ {
		c, err := Progressive{}.Choose(gpsCtx(seed))
		if err != nil {
			t.Fatal(err)
		}
		if c.Delay < 200 || c.Delay > 300 {
			t.Fatalf("Progressive delay %v outside [200,300]", c.Delay)
		}
		if len(c.Enabled) != 1 {
			t.Fatalf("Progressive enabled = %v, want [0]", c.Enabled)
		}
	}
}

func TestLocalSamplesInvariantRange(t *testing.T) {
	// Paper: Local ignores the guard and selects from [0, 300]; when the
	// sampled delay is below 200 nothing is enabled.
	sawDisabled, sawEnabled := false, false
	for seed := uint64(0); seed < 100; seed++ {
		c, err := Local{}.Choose(gpsCtx(seed))
		if err != nil {
			t.Fatal(err)
		}
		if c.Delay < 0 || c.Delay > 300 {
			t.Fatalf("Local delay %v outside [0,300]", c.Delay)
		}
		if len(c.Enabled) == 0 {
			sawDisabled = true
			if c.Delay >= 200 {
				t.Fatalf("delay %v >= 200 should enable the move", c.Delay)
			}
		} else {
			sawEnabled = true
			if c.Delay < 200 {
				t.Fatalf("delay %v < 200 should not enable the move", c.Delay)
			}
		}
	}
	if !sawDisabled || !sawEnabled {
		t.Error("Local should produce both enabled and disabled samples over [0,300]")
	}
}

func TestTimelockWhenNoWindows(t *testing.T) {
	ctx := &Context{
		MaxDelay:    50,
		MaxAttained: true,
		Horizon:     100,
		Windows:     []intervals.Set{intervals.EmptySet()},
		Rng:         rng.New(3),
	}
	for _, s := range []Strategy{ASAP{}, Progressive{}, Local{}, MaxTime{}} {
		c, err := s.Choose(ctx)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if !c.Timelocked {
			t.Errorf("%s should report timelock", s.Name())
		}
		if c.Delay != 50 {
			t.Errorf("%s timelock delay = %v, want invariant bound 50", s.Name(), c.Delay)
		}
	}
}

func TestUnboundedInvariantUsesHorizon(t *testing.T) {
	ctx := &Context{
		MaxDelay: math.Inf(1),
		Horizon:  10,
		Windows:  []intervals.Set{intervals.EmptySet()},
		Rng:      rng.New(3),
	}
	c, err := ASAP{}.Choose(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Timelocked || c.Delay <= 10 {
		t.Errorf("expected timelock with delay beyond horizon, got %+v", c)
	}
}

func TestASAPOpenWindowNudges(t *testing.T) {
	ctx := &Context{
		MaxDelay:    10,
		MaxAttained: true,
		Horizon:     100,
		Windows:     []intervals.Set{intervals.FromInterval(intervals.Open(2, 5))},
		Rng:         rng.New(3),
	}
	c, err := ASAP{}.Choose(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c.Delay <= 2 || c.Delay > 2.001 {
		t.Errorf("ASAP on open window = %v, want just above 2", c.Delay)
	}
	if len(c.Enabled) != 1 {
		t.Errorf("enabled = %v, want 1 move", c.Enabled)
	}
}

func TestMaxTimeOvershootsInnerWindow(t *testing.T) {
	// Invariant allows up to 100, but the only move is enabled on [2,5]:
	// the paper's MaxTime still waits the full 100, stranding the model
	// — that is how it exposes actionlocks.
	ctx := &Context{
		MaxDelay:    100,
		MaxAttained: true,
		Horizon:     1000,
		Windows:     []intervals.Set{intervals.FromInterval(intervals.Closed(2, 5))},
		Rng:         rng.New(3),
	}
	c, err := MaxTime{}.Choose(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c.Delay != 100 || len(c.Enabled) != 0 || c.Timelocked {
		t.Errorf("MaxTime = %+v, want delay 100 with nothing enabled", c)
	}
}

func TestMultipleWindowsEquiprobabilityInputs(t *testing.T) {
	// Two moves with overlapping windows: at the ASAP instant both are
	// enabled, so the engine can choose uniformly (paper's
	// equiprobability).
	ctx := &Context{
		MaxDelay:    100,
		MaxAttained: true,
		Horizon:     1000,
		Windows: []intervals.Set{
			intervals.FromInterval(intervals.Closed(3, 10)),
			intervals.FromInterval(intervals.Closed(3, 7)),
		},
		Rng: rng.New(3),
	}
	c, err := ASAP{}.Choose(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c.Delay != 3 || len(c.Enabled) != 2 {
		t.Errorf("ASAP = %+v, want delay 3 with both moves enabled", c)
	}
}

func TestInputStrategy(t *testing.T) {
	ctx := gpsCtx(1)
	s := Input{Ask: func(c *Context) (float64, int, error) { return 250, 0, nil }}
	c, err := s.Choose(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if c.Delay != 250 || len(c.Enabled) != 1 {
		t.Errorf("Input = %+v, want delay 250 with move 0", c)
	}

	// Uniform pick variant.
	s = Input{Ask: func(c *Context) (float64, int, error) { return 220, -1, nil }}
	c, err = s.Choose(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Enabled) != 1 {
		t.Errorf("Input(-1) enabled = %v", c.Enabled)
	}

	// Error cases.
	bad := []Input{
		{},
		{Ask: func(c *Context) (float64, int, error) { return -1, -1, nil }},
		{Ask: func(c *Context) (float64, int, error) { return 100, 0, nil }}, // move not enabled at 100
		{Ask: func(c *Context) (float64, int, error) { return 250, 7, nil }}, // out of range
		{Ask: func(c *Context) (float64, int, error) { return 0, -1, errors.New("nope") }},
	}
	for i, s := range bad {
		if _, err := s.Choose(ctx); err == nil {
			t.Errorf("bad input %d should fail", i)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"asap", "progressive", "local", "maxtime"} {
		s, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if s.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, s.Name())
		}
	}
	if _, err := ByName("bogus"); err == nil {
		t.Error("ByName should reject unknown names")
	}
}
