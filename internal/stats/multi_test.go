package stats

import (
	"math/rand"
	"testing"
)

func TestNewMultiEstimatorValidation(t *testing.T) {
	ok := Params{Delta: 0.1, Epsilon: 0.1}
	if _, err := NewMultiEstimator(MethodChernoff, ok, 0); err == nil {
		t.Errorf("cells=0 accepted")
	}
	if _, err := NewMultiEstimator(MethodChernoff, Params{Delta: 2, Epsilon: 0.1}, 3); err == nil {
		t.Errorf("bad delta accepted")
	}
	if _, err := NewMultiEstimator(Method(99), ok, 3); err == nil {
		t.Errorf("bad method accepted")
	}
	me, err := NewMultiEstimator(MethodChernoff, ok, 3)
	if err != nil {
		t.Fatal(err)
	}
	if me.Cells() != 3 {
		t.Errorf("Cells() = %d, want 3", me.Cells())
	}
}

func TestMultiEstimatorAddLengthMismatch(t *testing.T) {
	me, err := NewMultiEstimator(MethodChernoff, Params{Delta: 0.1, Epsilon: 0.1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := me.Add([]bool{true, false}); err == nil {
		t.Errorf("short vector accepted")
	}
	if err := me.Add(make([]bool, 4)); err == nil {
		t.Errorf("long vector accepted")
	}
}

// TestMultiEstimatorChernoffShared pins the fixed-N case: every cell
// shares the Chernoff bound, so the sweep is done after exactly N shared
// paths and each cell consumed all of them.
func TestMultiEstimatorChernoffShared(t *testing.T) {
	p := Params{Delta: 0.1, Epsilon: 0.1}
	me, err := NewMultiEstimator(MethodChernoff, p, 3)
	if err != nil {
		t.Fatal(err)
	}
	n, err := ChernoffBound(p)
	if err != nil {
		t.Fatal(err)
	}
	if me.Planned() != n {
		t.Errorf("Planned() = %d, want Chernoff bound %d", me.Planned(), n)
	}
	vec := []bool{true, false, true}
	for i := 0; i < n; i++ {
		if me.Done() {
			t.Fatalf("done after %d paths, want %d", i, n)
		}
		if err := me.Add(vec); err != nil {
			t.Fatal(err)
		}
	}
	if !me.Done() {
		t.Fatalf("not done after %d paths", n)
	}
	if me.Paths() != n {
		t.Errorf("Paths() = %d, want %d", me.Paths(), n)
	}
	for i, est := range me.Estimates() {
		if est.Trials != n {
			t.Errorf("cell %d trials = %d, want %d", i, est.Trials, n)
		}
		want := 0.0
		if vec[i] {
			want = 1.0
		}
		if est.Mean() != want {
			t.Errorf("cell %d mean = %g, want %g", i, est.Mean(), want)
		}
	}
}

// TestMultiEstimatorFreeze pins the per-cell stopping schedule with a
// sequential method: a degenerate cell converges (and freezes) long
// before a maximum-variance cell, and outcomes arriving after the freeze
// do not leak into the frozen estimate.
func TestMultiEstimatorFreeze(t *testing.T) {
	me, err := NewMultiEstimator(MethodChowRobbins, Params{Delta: 0.05, Epsilon: 0.05}, 2)
	if err != nil {
		t.Fatal(err)
	}
	vec := make([]bool, 2)
	flip := false
	var frozenAt int
	for !me.Done() {
		// Cell 0 always succeeds (variance → 0, stops at minN); cell 1
		// alternates (variance → 1/4, needs z²(1/4+1/n)/ε² ≈ 400 paths).
		vec[0] = true
		vec[1] = flip
		flip = !flip
		if err := me.Add(vec); err != nil {
			t.Fatal(err)
		}
		if frozenAt == 0 && me.Estimate(0).Trials < me.Paths() {
			frozenAt = me.Estimate(0).Trials
		}
		if me.Paths() > 100_000 {
			t.Fatal("sweep did not converge")
		}
	}
	e0, e1 := me.Estimate(0), me.Estimate(1)
	if frozenAt == 0 || e0.Trials != frozenAt {
		t.Errorf("cell 0 trials = %d, want frozen at its own stopping time %d", e0.Trials, frozenAt)
	}
	if e0.Mean() != 1 {
		t.Errorf("cell 0 mean = %g, want 1", e0.Mean())
	}
	if e1.Trials <= e0.Trials {
		t.Errorf("high-variance cell stopped at %d ≤ degenerate cell's %d", e1.Trials, e0.Trials)
	}
	if e1.Trials != me.Paths() {
		t.Errorf("last cell trials = %d, want every shared path %d", e1.Trials, me.Paths())
	}
	if me.Planned() != 0 {
		t.Errorf("Planned() = %d for sequential method, want 0", me.Planned())
	}
}

// TestMultiEstimatorMatchesStandalone is the stats-layer half of the
// sweep/single-bound agreement guarantee: a cell fed some outcome stream
// freezes at exactly the estimate a standalone generator of the same
// method produces from the same stream.
func TestMultiEstimatorMatchesStandalone(t *testing.T) {
	p := Params{Delta: 0.05, Epsilon: 0.05}
	for _, m := range []Method{MethodChernoff, MethodGauss, MethodChowRobbins} {
		me, err := NewMultiEstimator(m, p, 2)
		if err != nil {
			t.Fatal(err)
		}
		solo, err := NewGenerator(m, p)
		if err != nil {
			t.Fatal(err)
		}
		r := rand.New(rand.NewSource(3))
		vec := make([]bool, 2)
		soloDone := false
		for !me.Done() {
			vec[0] = r.Float64() < 0.3
			vec[1] = r.Float64() < 0.9
			if !soloDone {
				solo.Add(vec[0])
				soloDone = solo.Done()
			}
			if err := me.Add(vec); err != nil {
				t.Fatal(err)
			}
		}
		if got, want := me.Estimate(0), solo.Estimate(); got != want {
			t.Errorf("%v: cell estimate %+v, standalone %+v", m, got, want)
		}
	}
}
