// Multi-estimator support for shared-path sweeps: one Generator per
// (property, bound) cell, all fed from a single stream of per-path
// outcome vectors.
package stats

import "fmt"

// MultiEstimator drives one sample-count generator per (property, bound)
// cell off a single shared path stream. Each path contributes one
// Bernoulli outcome to every cell (the verdict of the property under that
// cell's time bound, see prop.Sweep); each cell stops by its own rule and
// then freezes, and sampling as a whole is done when the last cell has
// converged.
//
// Freezing is what keeps the per-cell estimates statistically identical
// to independent single-bound runs: a frozen cell's estimate is exactly
// the value at its own stopping time — the same estimate a standalone
// Generator would have produced from the same outcome prefix — and the
// extra paths drawn for slower cells never leak into it. In particular,
// with the same seed, strategy and worker count the horizon cell of a
// sweep is bit-identical to a plain single-bound analysis.
//
// A MultiEstimator is stateful and not safe for concurrent use; like a
// Generator it sits behind the parallel collector, which funnels worker
// results into it in a deterministic order.
type MultiEstimator struct {
	gens   []Generator
	frozen []bool
	open   int
	paths  int
}

// NewMultiEstimator returns a multi-estimator with cells independent
// generators of the given method, all at the same accuracy parameters.
func NewMultiEstimator(m Method, p Params, cells int) (*MultiEstimator, error) {
	if cells < 1 {
		return nil, fmt.Errorf("stats: multi-estimator needs at least one cell, got %d", cells)
	}
	me := &MultiEstimator{
		gens:   make([]Generator, cells),
		frozen: make([]bool, cells),
		open:   cells,
	}
	for i := range me.gens {
		g, err := NewGenerator(m, p)
		if err != nil {
			return nil, err
		}
		me.gens[i] = g
	}
	return me, nil
}

// Cells returns the number of cells.
func (me *MultiEstimator) Cells() int { return len(me.gens) }

// Add records one path's outcome vector: outcomes[i] is the verdict of
// cell i. Cells that already stopped ignore their entry. len(outcomes)
// must equal Cells(). Add never allocates.
func (me *MultiEstimator) Add(outcomes []bool) error {
	if len(outcomes) != len(me.gens) {
		return fmt.Errorf("stats: outcome vector has %d entries, want %d cells",
			len(outcomes), len(me.gens))
	}
	me.paths++
	for i, g := range me.gens {
		if me.frozen[i] {
			continue
		}
		g.Add(outcomes[i])
		if g.Done() {
			me.frozen[i] = true
			me.open--
		}
	}
	return nil
}

// Done reports whether every cell has met its accuracy target.
func (me *MultiEstimator) Done() bool { return me.open == 0 }

// Estimate returns the state of cell i, frozen at that cell's own
// stopping time once it converged.
func (me *MultiEstimator) Estimate(i int) Estimate { return me.gens[i].Estimate() }

// Estimates returns the per-cell estimator states in cell order.
func (me *MultiEstimator) Estimates() []Estimate {
	out := make([]Estimate, len(me.gens))
	for i, g := range me.gens {
		out[i] = g.Estimate()
	}
	return out
}

// Planned returns the a-priori number of shared paths if every cell knows
// it (Chernoff–Hoeffding: all cells share one fixed N), or 0 when the
// stopping time is data-dependent.
func (me *MultiEstimator) Planned() int {
	planned := me.gens[0].Planned()
	for _, g := range me.gens[1:] {
		if g.Planned() != planned {
			return 0
		}
	}
	return planned
}

// Paths returns the number of shared paths consumed so far — the
// scheduler's sample count, driven by the slowest-converging cell.
func (me *MultiEstimator) Paths() int { return me.paths }
