package stats

import (
	"math"
	"testing"

	"slimsim/internal/rng"
)

func TestNewRelativeValidatesRanges(t *testing.T) {
	bad := []struct{ delta, rel float64 }{
		{0, 0.1}, {1, 0.1}, {-0.5, 0.1}, {math.NaN(), 0.1},
		{0.05, 0}, {0.05, 1}, {0.05, -0.1}, {0.05, math.NaN()}, {0.05, 1.5},
	}
	for _, c := range bad {
		if _, err := NewRelative(c.delta, c.rel); err == nil {
			t.Errorf("NewRelative(%g, %g): want error, got nil", c.delta, c.rel)
		}
	}
	if _, err := NewRelative(0.05, 0.05); err != nil {
		t.Fatalf("NewRelative(0.05, 0.05): %v", err)
	}
}

// The tiny-P trap: a run that has seen no success must never be declared
// converged, no matter how many failures accumulate — p̂ = 0 makes the
// relative target 0·rel = 0 and any stop would report a confident zero.
func TestRelativeNeverStopsWithoutSuccesses(t *testing.T) {
	g, err := NewRelative(0.05, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200_000; i++ {
		if g.Done() {
			t.Fatalf("generator stopped after %d all-failure samples", i)
		}
		g.Add(false)
	}
	if g.Done() {
		t.Fatal("generator stopped on an all-failure stream")
	}
}

// Fewer than relMinSuccesses successes must not stop the run either, even
// past the minimum sample count: one lucky early success at a tiny p would
// otherwise freeze a wildly overestimated p̂.
func TestRelativeRequiresMinimumSuccesses(t *testing.T) {
	g, err := NewRelative(0.05, 0.5) // loose target to isolate the guard
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < relMinSuccesses-1; i++ {
		g.Add(true)
	}
	for i := 0; i < 100_000; i++ {
		g.Add(false)
		if g.Done() {
			t.Fatalf("stopped with %d successes after %d samples", g.Estimate().Successes, g.Estimate().Trials)
		}
	}
}

// On a genuinely rare stream the rule stops with the promised relative
// width, needing on the order of z²(1−p)/(rel²·p) samples.
func TestRelativeStopsAtTinyP(t *testing.T) {
	const p = 0.001
	const rel = 0.2
	g, err := NewRelative(0.05, rel)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(7)
	n := 0
	for !g.Done() {
		g.Add(src.Bernoulli(p))
		n++
		if n > 10_000_000 {
			t.Fatal("generator did not converge within 1e7 samples")
		}
	}
	est := g.Estimate()
	if est.Successes < relMinSuccesses {
		t.Fatalf("stopped with %d successes", est.Successes)
	}
	lo, hi := ConfidenceInterval(est, 0.05)
	if half := (hi - lo) / 2; half > rel*est.Mean()*1.0001 {
		t.Fatalf("stopped with half-width %g > rel·p̂ = %g", half, rel*est.Mean())
	}
	// z²(1−p)/(rel²p) ≈ 95 900 for these parameters; allow generous slack
	// for the binomial noise in p̂ at the stopping time.
	if n < 20_000 || n > 1_000_000 {
		t.Fatalf("stopping time %d implausible for p=%g rel=%g", n, p, rel)
	}
}

// A degenerate all-success stream stops once the minimums are met: the
// variance floor keeps the width finite and p̂ = 1 needs no refinement.
func TestRelativeAllSuccessesStops(t *testing.T) {
	g, err := NewRelative(0.05, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10_000; i++ {
		g.Add(true)
		if g.Done() {
			if n := g.Estimate().Trials; n < relMinSamples {
				t.Fatalf("stopped before minimum sample count: %d", n)
			}
			return
		}
	}
	t.Fatal("all-success stream never converged")
}

func TestRelativePlannedIsDataDependent(t *testing.T) {
	g, err := NewRelative(0.05, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.Planned(); got != 0 {
		t.Fatalf("Planned() = %d, want 0 (sequential)", got)
	}
	if MethodRelative.String() != "rel" {
		t.Fatalf("MethodRelative.String() = %q", MethodRelative.String())
	}
}
