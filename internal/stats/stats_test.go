package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"slimsim/internal/rng"
)

func TestChernoffBoundValues(t *testing.T) {
	tests := []struct {
		delta, eps float64
		want       int
	}{
		// N = ceil(ln(2/δ) / (2 ε²)).
		{0.05, 0.01, 18445},
		{0.01, 0.01, 26492},
		{0.05, 0.05, 738},
		{0.1, 0.1, 150},
	}
	for _, tt := range tests {
		got, err := ChernoffBound(Params{Delta: tt.delta, Epsilon: tt.eps})
		if err != nil {
			t.Fatalf("ChernoffBound(%v,%v): %v", tt.delta, tt.eps, err)
		}
		if got != tt.want {
			t.Errorf("ChernoffBound(δ=%v, ε=%v) = %d, want %d", tt.delta, tt.eps, got, tt.want)
		}
	}
}

func TestParamsValidate(t *testing.T) {
	bad := []Params{
		{Delta: 0, Epsilon: 0.1},
		{Delta: 1, Epsilon: 0.1},
		{Delta: 0.1, Epsilon: 0},
		{Delta: 0.1, Epsilon: 1},
		{Delta: -0.5, Epsilon: 0.1},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", p)
		}
	}
	if err := (Params{Delta: 0.05, Epsilon: 0.01}).Validate(); err != nil {
		t.Errorf("valid params rejected: %v", err)
	}
}

func TestEstimate(t *testing.T) {
	var e Estimate
	if e.Mean() != 0 {
		t.Error("empty estimate mean should be 0")
	}
	for i := 0; i < 10; i++ {
		e.Add(i < 3)
	}
	if e.Trials != 10 || e.Successes != 3 {
		t.Fatalf("estimate = %+v, want 3/10", e)
	}
	if math.Abs(e.Mean()-0.3) > 1e-15 {
		t.Errorf("mean = %v, want 0.3", e.Mean())
	}
	if math.Abs(e.Variance()-0.21) > 1e-15 {
		t.Errorf("variance = %v, want 0.21", e.Variance())
	}
}

func TestChernoffGeneratorStopsExactly(t *testing.T) {
	p := Params{Delta: 0.1, Epsilon: 0.1}
	g, err := NewChernoff(p)
	if err != nil {
		t.Fatal(err)
	}
	n := g.Planned()
	if n != 150 {
		t.Fatalf("Planned = %d, want 150", n)
	}
	for i := 0; i < n-1; i++ {
		if g.Done() {
			t.Fatalf("Done after %d < %d samples", i, n)
		}
		g.Add(i%2 == 0)
	}
	g.Add(true)
	if !g.Done() {
		t.Error("generator should be done after N samples")
	}
}

// TestChernoffCoverage verifies the CH guarantee empirically: over many
// repetitions the estimate is within ε of the truth far more often than
// 1−δ.
func TestChernoffCoverage(t *testing.T) {
	p := Params{Delta: 0.1, Epsilon: 0.05}
	const truth = 0.3
	src := rng.New(99)
	misses := 0
	const reps = 200
	for rep := 0; rep < reps; rep++ {
		g, err := NewChernoff(p)
		if err != nil {
			t.Fatal(err)
		}
		for !g.Done() {
			g.Add(src.Bernoulli(truth))
		}
		if math.Abs(g.Estimate().Mean()-truth) > p.Epsilon {
			misses++
		}
	}
	// Expected misses << δ·reps = 20; CH is very conservative.
	if misses > 20 {
		t.Errorf("estimate missed ε-tube %d/%d times, want ≤ 20", misses, reps)
	}
}

func TestGaussGeneratorNeedsFewerSamples(t *testing.T) {
	p := Params{Delta: 0.05, Epsilon: 0.05}
	ch, err := NewChernoff(p)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGauss(p)
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(7)
	const truth = 0.2
	for !g.Done() {
		g.Add(src.Bernoulli(truth))
	}
	if got, bound := g.Estimate().Trials, ch.Planned(); got >= bound {
		t.Errorf("Gauss used %d samples, expected fewer than CH bound %d", got, bound)
	}
	if math.Abs(g.Estimate().Mean()-truth) > 3*p.Epsilon {
		t.Errorf("Gauss estimate %v too far from %v", g.Estimate().Mean(), truth)
	}
}

func TestGaussDegenerateStream(t *testing.T) {
	p := Params{Delta: 0.05, Epsilon: 0.01}
	g, err := NewGauss(p)
	if err != nil {
		t.Fatal(err)
	}
	// All failures: variance floor must keep it sampling past minN.
	for i := 0; i < 50; i++ {
		g.Add(false)
	}
	if g.Done() {
		t.Error("Gauss should not stop at minN with ε=0.01 under the variance floor")
	}
	for i := 0; i < 10000; i++ {
		g.Add(false)
	}
	if !g.Done() {
		t.Error("Gauss should eventually stop on a degenerate stream")
	}
	if g.Planned() != 0 {
		t.Error("sequential generator should not report a planned count")
	}
}

func TestChowRobbinsStopsAndCovers(t *testing.T) {
	p := Params{Delta: 0.05, Epsilon: 0.05}
	src := rng.New(21)
	const truth = 0.4
	misses := 0
	const reps = 100
	var totalN int
	for rep := 0; rep < reps; rep++ {
		g, err := NewChowRobbins(p)
		if err != nil {
			t.Fatal(err)
		}
		for !g.Done() {
			g.Add(src.Bernoulli(truth))
		}
		totalN += g.Estimate().Trials
		if math.Abs(g.Estimate().Mean()-truth) > p.Epsilon {
			misses++
		}
	}
	// Nominal coverage 95%; allow generous slack for sequential bias.
	if misses > 15 {
		t.Errorf("Chow–Robbins missed %d/%d times, want ≤ 15", misses, reps)
	}
	ch, _ := NewChernoff(p)
	if avg := totalN / reps; avg >= ch.Planned() {
		t.Errorf("Chow–Robbins averaged %d samples, expected fewer than CH bound %d", avg, ch.Planned())
	}
}

func TestParseMethod(t *testing.T) {
	tests := []struct {
		in      string
		want    Method
		wantErr bool
	}{
		{"chernoff", MethodChernoff, false},
		{"ch", MethodChernoff, false},
		{"gauss", MethodGauss, false},
		{"clt", MethodGauss, false},
		{"chow-robbins", MethodChowRobbins, false},
		{"cr", MethodChowRobbins, false},
		{"bogus", 0, true},
	}
	for _, tt := range tests {
		got, err := ParseMethod(tt.in)
		if (err != nil) != tt.wantErr {
			t.Errorf("ParseMethod(%q) err = %v, wantErr %v", tt.in, err, tt.wantErr)
			continue
		}
		if err == nil && got != tt.want {
			t.Errorf("ParseMethod(%q) = %v, want %v", tt.in, got, tt.want)
		}
	}
	for _, m := range []Method{MethodChernoff, MethodGauss, MethodChowRobbins} {
		back, err := ParseMethod(m.String())
		if err != nil || back != m {
			t.Errorf("round-trip of %v failed: (%v, %v)", m, back, err)
		}
	}
}

func TestNewGeneratorDispatch(t *testing.T) {
	p := Params{Delta: 0.1, Epsilon: 0.1}
	for _, m := range []Method{MethodChernoff, MethodGauss, MethodChowRobbins} {
		g, err := NewGenerator(m, p)
		if err != nil || g == nil {
			t.Errorf("NewGenerator(%v) = (%v, %v)", m, g, err)
		}
	}
	if _, err := NewGenerator(Method(99), p); err == nil {
		t.Error("NewGenerator should reject invalid method")
	}
}

func TestNormalQuantile(t *testing.T) {
	tests := []struct {
		p    float64
		want float64
	}{
		{0.5, 0},
		{0.975, 1.959964},
		{0.995, 2.575829},
		{0.025, -1.959964},
		{0.0001, -3.719016},
	}
	for _, tt := range tests {
		got := normalQuantile(tt.p)
		if math.Abs(got-tt.want) > 1e-4 {
			t.Errorf("normalQuantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestQuickChernoffBoundMonotone(t *testing.T) {
	// Tighter ε or δ never decreases the required sample count.
	f := func(a, b uint8) bool {
		e1 := 0.01 + float64(a%50)/100 // in [0.01, 0.50]
		e2 := e1 / 2
		d := 0.01 + float64(b%50)/100
		n1, err1 := ChernoffBound(Params{Delta: d, Epsilon: e1})
		n2, err2 := ChernoffBound(Params{Delta: d, Epsilon: e2})
		n3, err3 := ChernoffBound(Params{Delta: d / 2, Epsilon: e1})
		if err1 != nil || err2 != nil || err3 != nil {
			return false
		}
		return n2 >= n1 && n3 >= n1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestGeneratorBoundaryDeltas pins the panic-path fix: every generator
// constructor returns an error (never panics) for Delta at or outside
// (0,1), and tiny-but-valid deltas — for which the naive 1−δ/2 rounds to
// exactly 1.0 and used to blow up inside normalQuantile — now build
// working generators that still reach a stopping decision.
func TestGeneratorBoundaryDeltas(t *testing.T) {
	methods := []Method{MethodChernoff, MethodGauss, MethodChowRobbins}
	for _, m := range methods {
		for _, delta := range []float64{0, 1, 2, -1, math.NaN()} {
			if _, err := NewGenerator(m, Params{Delta: delta, Epsilon: 0.1}); err == nil {
				t.Errorf("%s: Delta=%g: want error, got generator", m, delta)
			}
		}
		for _, delta := range []float64{1e-17, 1e-300, 1 - 1e-16} {
			g, err := NewGenerator(m, Params{Delta: delta, Epsilon: 0.5})
			if err != nil {
				t.Fatalf("%s: Delta=%g: %v", m, delta, err)
			}
			n := 0
			for ; n < 5000 && !g.Done(); n++ {
				g.Add(n%2 == 0)
			}
			if !g.Done() {
				t.Errorf("%s: Delta=%g: not done after %d samples", m, delta, n)
			}
		}
	}
}

// TestConfidenceIntervalTinyDelta guards the same rounding hazard on the
// telemetry-facing interval helper.
func TestConfidenceIntervalTinyDelta(t *testing.T) {
	lo, hi := ConfidenceInterval(Estimate{Successes: 1, Trials: 2}, 1e-17)
	if !(0 <= lo && lo <= hi && hi <= 1) {
		t.Fatalf("interval [%g, %g] not within [0,1]", lo, hi)
	}
	if lo > 0.5 || hi < 0.5 {
		t.Fatalf("interval [%g, %g] does not contain the mean 0.5", lo, hi)
	}
}

// TestUpperQuantileMatchesNaive checks the symmetric evaluation against
// the direct one where the latter is numerically safe.
func TestUpperQuantileMatchesNaive(t *testing.T) {
	for _, d := range []float64{0.5, 0.1, 0.05, 0.01, 1e-3, 1e-6} {
		got, want := upperQuantile(d), normalQuantile(1-d/2)
		if math.Abs(got-want) > 1e-8 {
			t.Errorf("upperQuantile(%g) = %g, normalQuantile(1-δ/2) = %g", d, got, want)
		}
	}
}

// TestChernoffBoundOverflow pins the N_max guard: a sample budget above
// MaxPlannedSamples must come back as an explicit error, not overflow the
// int conversion into a garbage plan the generator stops on instantly.
func TestChernoffBoundOverflow(t *testing.T) {
	// ε=1e-9 plans ≈1.8e18 samples — far past N_max and past MaxInt32.
	_, err := ChernoffBound(Params{Delta: 0.05, Epsilon: 1e-9})
	if err == nil {
		t.Fatal("ChernoffBound(ε=1e-9) = nil error, want N_max overflow")
	}
	if !strings.Contains(err.Error(), "exceeds N_max") {
		t.Fatalf("overflow error %q does not name N_max", err)
	}
	// NewChernoff must refuse the same parameters rather than return a
	// generator whose Done() is immediately (or never) true.
	if g, err := NewChernoff(Params{Delta: 0.05, Epsilon: 1e-9}); err == nil {
		t.Fatalf("NewChernoff(ε=1e-9) = %+v, nil error; want N_max overflow", g)
	}
}

// TestChernoffBoundBoundary walks ε across the N_max threshold: just-legal
// budgets plan a positive in-range N, just-illegal ones error, and the
// planned N is always ⌈ln(2/δ)/(2ε²)⌉.
func TestChernoffBoundBoundary(t *testing.T) {
	const delta = 0.05
	// Solve ln(2/δ)/(2ε²) = MaxPlannedSamples for the threshold ε.
	crit := math.Sqrt(math.Log(2/delta) / (2 * MaxPlannedSamples))

	okEps := crit * 1.0001 // slightly looser: budget just under N_max
	n, err := ChernoffBound(Params{Delta: delta, Epsilon: okEps})
	if err != nil {
		t.Fatalf("ChernoffBound(ε=%g) error: %v", okEps, err)
	}
	want := int(math.Ceil(math.Log(2/delta) / (2 * okEps * okEps)))
	if n != want || n <= 0 || n > MaxPlannedSamples {
		t.Fatalf("ChernoffBound(ε=%g) = %d, want %d in (0, N_max]", okEps, n, want)
	}

	badEps := crit * 0.999 // slightly tighter: budget just over N_max
	if n, err := ChernoffBound(Params{Delta: delta, Epsilon: badEps}); err == nil {
		t.Fatalf("ChernoffBound(ε=%g) = %d, nil error; want N_max overflow", badEps, n)
	}
}
