// Relative-error stopping: the sequential generator for rare-event runs.
// Absolute-error stopping rules (Chernoff, Gauss, Chow–Robbins at ε) are
// useless when the true probability is far below ε — they stop long before
// a single success has been observed and report 0 ± ε. The relative rule
// instead continues until the CLT half-width is at most Rel·p̂, which for
// Bernoulli outcomes needs on the order of z²/(Rel²·p) samples: the cost
// scales with 1/p, but the answer carries the same number of significant
// digits at every magnitude.
package stats

import (
	"fmt"
	"math"
)

// relMinSamples and relMinSuccesses guard the anticonservative small-sample
// regime: the CLT interval is meaningless before a handful of successes, and
// with p̂ = 0 the target half-width Rel·p̂ is 0 — the rule must never stop on
// an all-failure prefix, however long (the "tiny-P" trap: a plain Gauss rule
// with a variance floor stops at minN having seen nothing).
const (
	relMinSamples   = 50
	relMinSuccesses = 10
)

// relGenerator stops when z_{1−δ/2}·sqrt(p̂(1−p̂)/n) ≤ rel·p̂, with at least
// relMinSamples samples and relMinSuccesses successes.
type relGenerator struct {
	est Estimate
	rel float64
	z   float64
}

var _ Generator = (*relGenerator)(nil)

// NewRelative returns the relative-error sequential generator: sampling
// stops once the two-sided CLT confidence half-width at risk delta drops to
// rel·p̂ or below. Both delta and rel must lie in (0, 1). The stopping time
// is data-dependent and grows like 1/p, so pair it with a rare-event-capable
// sampler (importance splitting) or an explicit budget for very small p.
func NewRelative(delta, rel float64) (Generator, error) {
	if !(delta > 0 && delta < 1) {
		return nil, fmt.Errorf("stats: δ must lie in (0,1), got %g", delta)
	}
	if !(rel > 0 && rel < 1) {
		return nil, fmt.Errorf("stats: relative error must lie in (0,1), got %g", rel)
	}
	return &relGenerator{rel: rel, z: upperQuantile(delta)}, nil
}

func (g *relGenerator) Add(success bool) { g.est.Add(success) }

func (g *relGenerator) Done() bool {
	n := g.est.Trials
	if n < relMinSamples || g.est.Successes < relMinSuccesses {
		return false
	}
	p := g.est.Mean()
	// p > 0 here (successes ≥ relMinSuccesses). The variance floor mirrors
	// the Gauss generator: with p̂ = 1 the empirical variance vanishes and
	// the rule would stop instantly; 1/(4n) keeps a non-trivial width.
	v := g.est.Variance()
	if v == 0 {
		v = 1 / float64(4*n)
	}
	half := g.z * math.Sqrt(v/float64(n))
	return half <= g.rel*p
}

func (g *relGenerator) Estimate() Estimate { return g.est }
func (g *relGenerator) Planned() int       { return 0 }
