// Package stats implements the quantitative statistical analysis of the
// simulator: the fixed-sample-size Chernoff–Hoeffding generator the paper
// ships, plus the Chow–Robbins and Gauss (CLT-based) sequential generators
// it names as future extensions.
//
// A Generator consumes a stream of Bernoulli outcomes (one per simulated
// path: did the path satisfy the property?) and decides when enough samples
// have been collected for the requested confidence 1−δ and error bound ε.
package stats

import (
	"fmt"
	"math"
)

// Params carries the user-facing accuracy knobs of an analysis: with
// probability at least 1−Delta the reported estimate is within Epsilon of
// the true probability.
type Params struct {
	// Delta is the statistical risk δ ∈ (0, 1).
	Delta float64
	// Epsilon is the absolute error bound ε ∈ (0, 1).
	Epsilon float64
}

// Validate checks the parameter ranges.
func (p Params) Validate() error {
	if !(p.Delta > 0 && p.Delta < 1) {
		return fmt.Errorf("stats: δ must lie in (0,1), got %g", p.Delta)
	}
	if !(p.Epsilon > 0 && p.Epsilon < 1) {
		return fmt.Errorf("stats: ε must lie in (0,1), got %g", p.Epsilon)
	}
	return nil
}

// MaxPlannedSamples is the largest sample budget a generator will plan
// (N_max). Params.Validate admits any ε ∈ (0,1), and a tiny ε makes the
// Chernoff bound astronomically large — e.g. ε=1e-9 plans ≈1.8e18 paths —
// which both overflows the int conversion and could never finish anyway.
// The cap is the point where the plan stops being a plan; requests beyond
// it are configuration errors, reported before any sampling starts.
const MaxPlannedSamples = math.MaxInt32

// ChernoffBound returns the number of samples N such that the empirical
// mean of N i.i.d. Bernoulli variables deviates from the true probability
// by more than ε with probability at most δ:
//
//	N = ⌈ ln(2/δ) / (2 ε²) ⌉.
//
// This is the standard two-sided Chernoff–Hoeffding bound used by the
// paper's generator (the printed formula in the paper is OCR-garbled; this
// is the form from the cited APMC literature). Budgets above
// MaxPlannedSamples are rejected with an error instead of silently
// overflowing the conversion to int (which yielded a garbage plan the
// generator could stop on instantly).
func ChernoffBound(p Params) (int, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	n := math.Ceil(math.Log(2/p.Delta) / (2 * p.Epsilon * p.Epsilon))
	if !(n <= MaxPlannedSamples) {
		return 0, fmt.Errorf("stats: Chernoff sample budget %.4g exceeds N_max %d (δ=%g, ε=%g); loosen the accuracy target",
			n, int64(MaxPlannedSamples), p.Delta, p.Epsilon)
	}
	return int(n), nil
}

// Estimate is the running state of a Bernoulli estimator.
type Estimate struct {
	// Successes counts positive outcomes (property satisfied).
	Successes int
	// Trials counts all outcomes.
	Trials int
}

// Add records one outcome.
func (e *Estimate) Add(success bool) {
	e.Trials++
	if success {
		e.Successes++
	}
}

// Mean returns the empirical probability (0 for no trials).
func (e Estimate) Mean() float64 {
	if e.Trials == 0 {
		return 0
	}
	return float64(e.Successes) / float64(e.Trials)
}

// Variance returns the empirical Bernoulli variance p̂(1−p̂).
func (e Estimate) Variance() float64 {
	m := e.Mean()
	return m * (1 - m)
}

// ConfidenceInterval returns a two-sided CLT (Wald-style) confidence
// interval around the empirical mean at level 1−delta, clamped to [0, 1].
// The variance uses the 1/(4n) floor of the Gauss generator so degenerate
// estimates (all outcomes equal) still get a non-trivial interval. With no
// trials the interval is the vacuous [0, 1].
//
// This is the interval shown by the telemetry layer (progress line, run
// reports); the stopping rules themselves live in the generators below.
func ConfidenceInterval(e Estimate, delta float64) (lo, hi float64) {
	if e.Trials == 0 || !(delta > 0 && delta < 1) {
		return 0, 1
	}
	n := float64(e.Trials)
	v := e.Variance()
	if v == 0 {
		v = 1 / (4 * n)
	}
	half := upperQuantile(delta) * math.Sqrt(v/n)
	lo = e.Mean() - half
	hi = e.Mean() + half
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// Generator decides how many samples an analysis needs. Implementations
// are stateful and not safe for concurrent use; the parallel collector
// funnels worker results into a single Generator.
type Generator interface {
	// Add records one path outcome.
	Add(success bool)
	// Done reports whether the accuracy target has been met.
	Done() bool
	// Estimate returns the current estimator state.
	Estimate() Estimate
	// Planned returns the a-priori total number of samples if the
	// generator knows it (Chernoff–Hoeffding), or 0 if the stopping
	// time is data-dependent.
	Planned() int
}

// chGenerator is the fixed-N Chernoff–Hoeffding generator.
type chGenerator struct {
	est Estimate
	n   int
}

var _ Generator = (*chGenerator)(nil)

// NewChernoff returns the paper's generator: it stops after the a-priori
// bound ChernoffBound(p) samples.
func NewChernoff(p Params) (Generator, error) {
	n, err := ChernoffBound(p)
	if err != nil {
		return nil, err
	}
	return &chGenerator{n: n}, nil
}

func (g *chGenerator) Add(success bool)   { g.est.Add(success) }
func (g *chGenerator) Done() bool         { return g.est.Trials >= g.n }
func (g *chGenerator) Estimate() Estimate { return g.est }
func (g *chGenerator) Planned() int       { return g.n }

// gaussGenerator stops when the CLT-based confidence interval half-width
// drops below ε. It is anticonservative for very small sample counts, so a
// minimum sample count is enforced.
type gaussGenerator struct {
	est    Estimate
	params Params
	z      float64
	minN   int
}

var _ Generator = (*gaussGenerator)(nil)

// NewGauss returns a sequential generator based on the normal
// approximation: sampling stops once z_{1−δ/2} · sqrt(p̂(1−p̂)/n) ≤ ε (with
// at least minN = 50 samples). For probabilities away from 0 and 1 it needs
// far fewer samples than the Chernoff bound at the same nominal accuracy.
func NewGauss(p Params) (Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &gaussGenerator{
		params: p,
		z:      upperQuantile(p.Delta),
		minN:   50,
	}, nil
}

func (g *gaussGenerator) Add(success bool) { g.est.Add(success) }

func (g *gaussGenerator) Done() bool {
	n := g.est.Trials
	if n < g.minN {
		return false
	}
	// Use the Wilson-style conservative variance floor 1/(4n) when the
	// empirical variance is zero (all outcomes equal so far) — otherwise
	// the generator would stop immediately at minN with p̂ ∈ {0, 1}.
	v := g.est.Variance()
	if v == 0 {
		v = 1 / float64(4*n)
	}
	half := g.z * math.Sqrt(v/float64(n))
	return half <= g.params.Epsilon
}

func (g *gaussGenerator) Estimate() Estimate { return g.est }
func (g *gaussGenerator) Planned() int       { return 0 }

// chowRobbinsGenerator implements the Chow–Robbins sequential procedure for
// fixed-width confidence intervals: continue sampling while
// n < z² · (S²_n + 1/n) / ε², where S²_n is the empirical variance. It has
// asymptotically the nominal coverage with a data-dependent stopping time.
type chowRobbinsGenerator struct {
	est    Estimate
	params Params
	z      float64
	minN   int
}

var _ Generator = (*chowRobbinsGenerator)(nil)

// NewChowRobbins returns the Chow–Robbins sequential generator.
func NewChowRobbins(p Params) (Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &chowRobbinsGenerator{
		params: p,
		z:      upperQuantile(p.Delta),
		minN:   30,
	}, nil
}

func (g *chowRobbinsGenerator) Add(success bool) { g.est.Add(success) }

func (g *chowRobbinsGenerator) Done() bool {
	n := g.est.Trials
	if n < g.minN {
		return false
	}
	s2 := g.est.Variance()
	needed := g.z * g.z * (s2 + 1/float64(n)) / (g.params.Epsilon * g.params.Epsilon)
	return float64(n) >= needed
}

func (g *chowRobbinsGenerator) Estimate() Estimate { return g.est }
func (g *chowRobbinsGenerator) Planned() int       { return 0 }

// Method names a sample-count generator.
type Method int

// Supported generators.
const (
	MethodChernoff Method = iota + 1
	MethodGauss
	MethodChowRobbins
	// MethodRelative is the relative-error sequential rule (NewRelative).
	// It is selected by the -rel knob rather than -method because it takes
	// the target relative error as an extra parameter.
	MethodRelative
)

// String returns the method's CLI name.
func (m Method) String() string {
	switch m {
	case MethodChernoff:
		return "chernoff"
	case MethodGauss:
		return "gauss"
	case MethodChowRobbins:
		return "chow-robbins"
	case MethodRelative:
		return "rel"
	default:
		return "invalid"
	}
}

// ParseMethod maps a CLI name to a Method.
func ParseMethod(s string) (Method, error) {
	switch s {
	case "chernoff", "ch":
		return MethodChernoff, nil
	case "gauss", "clt":
		return MethodGauss, nil
	case "chow-robbins", "cr":
		return MethodChowRobbins, nil
	default:
		return 0, fmt.Errorf("stats: unknown method %q (want chernoff, gauss or chow-robbins)", s)
	}
}

// NewGenerator builds the generator for a method.
func NewGenerator(m Method, p Params) (Generator, error) {
	switch m {
	case MethodChernoff:
		return NewChernoff(p)
	case MethodGauss:
		return NewGauss(p)
	case MethodChowRobbins:
		return NewChowRobbins(p)
	default:
		return nil, fmt.Errorf("stats: invalid method %d", m)
	}
}

// upperQuantile returns z_{1−δ/2}, the two-sided critical value at risk
// δ ∈ (0, 1). It evaluates the quantile at δ/2 and negates: for tiny δ
// (say 1e-17) the naive 1−δ/2 rounds to exactly 1.0 in float64 and the
// quantile blows up, while δ/2 keeps full precision down to the smallest
// subnormal — any δ that passes Params.Validate is safe here.
func upperQuantile(delta float64) float64 {
	return -normalQuantile(delta / 2)
}

// normalQuantile returns the p-quantile of the standard normal
// distribution using the Acklam rational approximation (absolute error
// below 1.15e-9, ample for stopping rules).
func normalQuantile(p float64) float64 {
	if p <= 0 || p >= 1 {
		panic(fmt.Sprintf("stats: quantile argument %g out of (0,1)", p))
	}
	a := [6]float64{-3.969683028665376e+01, 2.209460984245205e+02, -2.759285104469687e+02,
		1.383577518672690e+02, -3.066479806614716e+01, 2.506628277459239e+00}
	b := [5]float64{-5.447609879822406e+01, 1.615858368580409e+02, -1.556989798598866e+02,
		6.680131188771972e+01, -1.328068155288572e+01}
	c := [6]float64{-7.784894002430293e-03, -3.223964580411365e-01, -2.400758277161838e+00,
		-2.549732539343734e+00, 4.374664141464968e+00, 2.938163982698783e+00}
	d := [4]float64{7.784695709041462e-03, 3.224671290700398e-01, 2.445134137142996e+00,
		3.754408661907416e+00}
	const pLow = 0.02425
	switch {
	case p < pLow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p <= 1-pLow:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	default:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	}
}
