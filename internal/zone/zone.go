// Package zone computes exact time-bounded reachability probabilities for
// the single-clock stochastic timed fragment of SLIM: at most one clock
// variable, no continuous variables, exponential rates on Markovian edges
// and arbitrary (clock- or data-) guards and invariants on the rest.
//
// The analyzer unfolds the model into *time segments*. Within a segment no
// guard window opens or closes and no invariant deadline is crossed, so the
// discrete behaviour is a CTMC over the segment's snapshot states: guarded
// moves are either fireable throughout the segment interior (vanishing
// states, resolved by maximal progress exactly as in package ctmc) or
// disabled throughout, and only the exponential races evolve. The transient
// distribution across each segment is computed by uniformization; at each
// segment boundary the deterministic firings (ASAP strategy semantics) are
// applied, goal states are absorbed, timelocked mass is declared dead, and
// the surviving mass seeds the next segment. The final answer is the goal
// mass absorbed at or before the bound (the bound itself is inclusive,
// matching the simulator's reach evaluator).
//
// Fidelity notes, relative to sim.Engine under the "asap" strategy:
//
//   - Windows whose infimum is not attained (strict guards like x > c) are
//     fired at the infimum exactly, where the engine nudges by 1e-9. The
//     discrepancy is below any practical Chernoff band.
//   - Boundaries closer together than 1e-9 are merged; window endpoints
//     within 1e-9 of "now" are snapped to now. This absorbs the one-ulp
//     float drift between the engine's single-hop delays and the
//     analyzer's multi-hop segment advances.
//   - Clock resets on transitions fired at deterministic boundary times
//     are supported (the reset time is known exactly, so the snapshot
//     stays a faithful representative). A reset on a transition reached
//     from a Markovian jump would smear the clock valuation across the
//     segment and is rejected as ineligible.
package zone

import (
	"errors"
	"fmt"
	"math"

	"slimsim/internal/expr"
	"slimsim/internal/intervals"
	"slimsim/internal/network"
)

// ErrIneligible marks models outside the single-clock timed fragment. Use
// errors.Is to distinguish "cannot analyze this model" from analysis
// failures.
var ErrIneligible = errors.New("model outside the single-clock timed fragment")

const (
	// timeEps is the boundary-snapping tolerance: window endpoints within
	// timeEps of the current instant are treated as "now", and candidate
	// boundaries closer than timeEps are merged. It matches the engine's
	// ε-nudge scale.
	timeEps = 1e-9
	// segTail bounds the uniformization truncation error per segment.
	segTail = 1e-13
	// massEps is the probability mass below which a support state is
	// dropped.
	massEps = 1e-15
	// defaultMaxSegments bounds the number of time segments, which also
	// bounds total progress for pathological sub-ε boundary spacings.
	defaultMaxSegments = 1 << 14
	// maxCascade bounds immediate-transition cascade depth (cycle guard).
	maxCascade = 4096
)

// Result carries the exact probability together with exploration
// statistics.
type Result struct {
	// Probability is P(reach goal within the bound), the goal mass
	// absorbed at or before the bound.
	Probability float64
	// Dead is the probability mass timelocked (deadlocked with an expired
	// invariant) strictly before reaching the goal. Under the default
	// lock-violates verdict policy this mass counts against the goal.
	Dead float64
	// Segments is the number of time segments unfolded.
	Segments int
	// PeakStates is the largest per-segment closure size encountered.
	PeakStates int
}

// Eligible reports whether the model and goal are inside the fragment the
// analyzer handles: no continuous variables, at most one clock, and a goal
// that is boolean and (transitively, through flow definitions) independent
// of timed variables. The returned error wraps ErrIneligible.
func Eligible(rt *network.Runtime, goal expr.Expr) error {
	net := rt.Net()
	clocks := 0
	for i := range net.Vars {
		d := &net.Vars[i]
		switch {
		case d.Type.Continuous:
			return fmt.Errorf("zone: continuous variable %s: %w", d.Name, ErrIneligible)
		case d.Type.Clock:
			clocks++
		}
	}
	if clocks > 1 {
		return fmt.Errorf("zone: %d clocks (at most one supported): %w", clocks, ErrIneligible)
	}
	if err := expr.CheckBool(goal, net.DeclMap()); err != nil {
		return fmt.Errorf("zone: goal: %w", err)
	}
	// The goal must be delay-constant: its value may change only at
	// discrete moves, never during pure waiting. Flow variables are
	// followed through their defining expressions.
	seen := make(map[expr.VarID]bool)
	var visit func(e expr.Expr) error
	visit = func(e expr.Expr) error {
		for id := range expr.Refs(e) {
			if seen[id] {
				continue
			}
			seen[id] = true
			d := &net.Vars[id]
			if d.Type.Timed() {
				return fmt.Errorf("zone: goal depends on timed variable %s: %w", d.Name, ErrIneligible)
			}
			if d.Flow && d.FlowExpr != nil {
				if err := visit(d.FlowExpr); err != nil {
					return err
				}
			}
		}
		return nil
	}
	return visit(goal)
}

// Analyze computes P(reach goal within bound) exactly. maxStates bounds the
// per-segment closure size (<= 0 selects a default).
func Analyze(rt *network.Runtime, goal expr.Expr, bound float64, maxStates int) (*Result, error) {
	if err := Eligible(rt, goal); err != nil {
		return nil, err
	}
	if bound < 0 || math.IsNaN(bound) || math.IsInf(bound, 0) {
		return nil, fmt.Errorf("zone: bound must be finite and non-negative, got %g", bound)
	}
	if maxStates <= 0 {
		maxStates = 1 << 18
	}
	a := &analyzer{
		rt:        rt,
		goal:      goal,
		bound:     bound,
		maxStates: maxStates,
		clockID:   -1,
	}
	net := rt.Net()
	for i := range net.Vars {
		if net.Vars[i].Type.Clock {
			a.clockID = expr.VarID(i)
		}
	}

	init, err := rt.InitialState()
	if err != nil {
		return nil, err
	}
	cur := []massState{{st: init, mass: 1}}
	tau := 0.0
	res := &Result{}
	for {
		// Boundary processing: fire deterministic moves, absorb goal and
		// dead mass, merge the rest into the segment's support.
		support, err := a.settle(cur)
		if err != nil {
			return nil, err
		}
		var alive float64
		for _, ms := range support {
			alive += ms.mass
		}
		if alive <= massEps || tau >= bound {
			if total := a.reached + a.dead + alive; math.Abs(total-1) > 1e-6 {
				return nil, fmt.Errorf("zone: mass leak: reached %g + dead %g + alive %g = %g",
					a.reached, a.dead, alive, total)
			}
			res.Probability = a.reached
			res.Dead = a.dead
			res.Segments = a.segments
			res.PeakStates = a.peak
			return res, nil
		}

		c, err := a.buildClosure(support)
		if err != nil {
			return nil, err
		}
		if n := len(c.states); n > a.peak {
			a.peak = n
		}
		delta := bound - tau
		if c.minCand < delta {
			delta = c.minCand
		}
		survivors, err := a.transient(c, delta)
		if err != nil {
			return nil, err
		}
		tau += delta
		cur = cur[:0]
		for i, m := range survivors {
			if m <= massEps {
				continue
			}
			adv, err := rt.Advance(&c.states[i], delta)
			if err != nil {
				return nil, err
			}
			cur = append(cur, massState{st: adv, mass: m})
		}
		a.segments++
		if a.segments > defaultMaxSegments {
			return nil, fmt.Errorf("zone: segment budget (%d) exceeded at t=%g; boundaries too dense", defaultMaxSegments, tau)
		}
	}
}

// massState is a probability-weighted network state.
type massState struct {
	st   network.State
	mass float64
}

type analyzer struct {
	rt        *network.Runtime
	goal      expr.Expr
	bound     float64
	maxStates int
	clockID   expr.VarID // -1 when the model has no clock

	reached  float64
	dead     float64
	segments int
	peak     int
}

// fireableNow reports whether the invariant-clipped guard window w admits
// firing at the current instant under ASAP semantics: its first non-past
// component starts at or before now (modulo the ε-snap). Right-open
// components ending now are already past — the engine's strict bound
// excludes the endpoint. Open-at-zero components are the engine's ε-nudge
// case, fired here at the infimum exactly.
func fireableNow(w intervals.Set) bool {
	for _, iv := range w.Intervals() {
		if iv.Hi < -timeEps || (iv.HiOpen && iv.Hi <= timeEps) {
			continue
		}
		return iv.Lo <= timeEps
	}
	return false
}

// delayClip mirrors sim's invariant clip: the delays the invariants allow.
func delayClip(maxD float64, attained bool) intervals.Set {
	if math.IsInf(maxD, 1) {
		return intervals.FromInterval(intervals.AtLeast(0))
	}
	if attained {
		return intervals.FromInterval(intervals.Closed(0, maxD))
	}
	return intervals.FromInterval(intervals.ClosedOpen(0, maxD))
}

// fireable collects the guarded moves of st that are fireable now, along
// with the invariant deadline. Windows are clipped by the invariants first,
// exactly like the engine's step: an open-at-zero window under an expired
// invariant (maxD = 0) is a timelock, not a firing.
func (a *analyzer) fireable(st *network.State) ([]network.Move, float64, error) {
	d, att, nowOK, err := a.rt.MaxDelay(st)
	if err != nil {
		return nil, 0, err
	}
	if !nowOK {
		return nil, 0, fmt.Errorf("zone: invariant violated at t=%g", st.Time)
	}
	clip := delayClip(d, att)
	moves := a.rt.Moves(st)
	var out []network.Move
	for i := range moves {
		if moves[i].Markovian() {
			continue
		}
		w, err := a.rt.Window(st, &moves[i])
		if err != nil {
			return nil, 0, err
		}
		if fireableNow(w.Intersect(clip)) {
			out = append(out, moves[i])
		}
	}
	return out, d, nil
}

// assignsClock reports whether firing m writes the clock variable.
func (a *analyzer) assignsClock(m *network.Move) bool {
	if a.clockID < 0 {
		return false
	}
	net := a.rt.Net()
	for _, part := range m.Parts {
		tr := &net.Processes[part.Proc].Transitions[part.Trans]
		for i := range tr.Effects {
			if tr.Effects[i].Var == a.clockID {
				return true
			}
		}
	}
	return false
}

// settle performs boundary processing on a raw distribution: recursively
// fire every fireable move (uniform choice, maximal progress — clock resets
// are legal here, the boundary time is deterministic), absorb goal states
// into reached and timelocked states into dead, and merge the surviving
// tangible states by canonical key.
func (a *analyzer) settle(cur []massState) (map[string]*massState, error) {
	out := make(map[string]*massState, len(cur))
	for i := range cur {
		if cur[i].mass <= massEps {
			continue
		}
		if err := a.settleState(&cur[i].st, cur[i].mass, out, 0); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (a *analyzer) settleState(st *network.State, mass float64, out map[string]*massState, depth int) error {
	if depth > maxCascade {
		return fmt.Errorf("zone: immediate-transition cascade exceeds %d steps (cycle of immediate transitions?)", maxCascade)
	}
	g, err := expr.EvalBool(a.goal, a.rt.Env(st))
	if err != nil {
		return fmt.Errorf("zone: evaluating goal: %w", err)
	}
	if g {
		a.reached += mass
		return nil
	}
	en, d, err := a.fireable(st)
	if err != nil {
		return err
	}
	if len(en) == 0 {
		if d <= timeEps {
			a.dead += mass
			return nil
		}
		key := st.Key()
		if ms, ok := out[key]; ok {
			ms.mass += mass
		} else {
			out[key] = &massState{st: st.Clone(), mass: mass}
		}
		return nil
	}
	share := mass / float64(len(en))
	for i := range en {
		succ, err := a.rt.Apply(st, &en[i])
		if err != nil {
			return err
		}
		if err := a.settleState(&succ, share, out, depth+1); err != nil {
			return err
		}
	}
	return nil
}

// Sentinel targets of a segment edge resolution.
const (
	toGoal = -1
	toDead = -2
)

// share is a probability-weighted resolution target: a tangible closure
// state index, or toGoal/toDead.
type share struct {
	to int
	p  float64
}

// closure is one segment's CTMC: the tangible snapshot states reachable
// through Markovian jumps (with vanishing intermediates eliminated), their
// resolved rate edges, and the earliest future boundary.
type closure struct {
	states  []network.State
	index   map[string]int
	exit    []float64 // total Markovian exit rate per state
	edges   [][]share // resolved rate edges per state (p holds the rate)
	support []share   // initial distribution (p holds the mass)
	// minCand is the earliest boundary candidate strictly after now:
	// window endpoints and invariant deadlines of every state touched.
	minCand float64
}

// addCand registers a relative boundary candidate.
func (c *closure) addCand(t float64) {
	if t > timeEps && !math.IsInf(t, 1) && t < c.minCand {
		c.minCand = t
	}
}

// candWindows registers every finite endpoint of every guarded move window
// of st: within a segment the fireable set must not change, so each
// endpoint subdivides time.
func (a *analyzer) candWindows(c *closure, st *network.State) error {
	moves := a.rt.Moves(st)
	for i := range moves {
		if moves[i].Markovian() {
			continue
		}
		w, err := a.rt.Window(st, &moves[i])
		if err != nil {
			return err
		}
		for _, iv := range w.Intervals() {
			c.addCand(iv.Lo)
			c.addCand(iv.Hi)
		}
	}
	return nil
}

// buildClosure explores the segment's CTMC from the settled support:
// tangible states are interned and expanded through their Markovian moves,
// whose targets are resolved through interior immediate cascades.
func (a *analyzer) buildClosure(support map[string]*massState) (*closure, error) {
	c := &closure{
		index:   make(map[string]int, len(support)),
		minCand: math.Inf(1),
	}
	resolved := make(map[string][]share)
	for _, ms := range support {
		idx, err := a.intern(c, &ms.st)
		if err != nil {
			return nil, err
		}
		c.support = append(c.support, share{to: idx, p: ms.mass})
	}
	for head := 0; head < len(c.states); head++ {
		st := &c.states[head]
		moves := a.rt.Moves(st)
		for i := range moves {
			if !moves[i].Markovian() {
				continue
			}
			if a.assignsClock(&moves[i]) {
				return nil, fmt.Errorf("zone: clock reset on Markovian transition %s: %w",
					moves[i].Label(a.rt), ErrIneligible)
			}
			succ, err := a.rt.Apply(st, &moves[i])
			if err != nil {
				return nil, err
			}
			dist, err := a.resolveJump(c, resolved, &succ, make(map[string]bool), 0)
			if err != nil {
				return nil, err
			}
			// Re-resolve head: interning in resolveJump may have grown
			// c.states, invalidating st.
			st = &c.states[head]
			for _, w := range dist {
				c.edges[head] = append(c.edges[head], share{to: w.to, p: moves[i].Rate * w.p})
				c.exit[head] += moves[i].Rate * w.p
			}
		}
	}
	return c, nil
}

// intern adds a tangible snapshot state to the closure, registering its
// deadline and window-endpoint boundary candidates.
func (a *analyzer) intern(c *closure, st *network.State) (int, error) {
	key := st.Key()
	if idx, ok := c.index[key]; ok {
		return idx, nil
	}
	if len(c.states) >= a.maxStates {
		return 0, fmt.Errorf("zone: segment closure exceeds %d states", a.maxStates)
	}
	d, _, nowOK, err := a.rt.MaxDelay(st)
	if err != nil {
		return 0, err
	}
	if !nowOK {
		return 0, fmt.Errorf("zone: invariant violated at t=%g", st.Time)
	}
	c.addCand(d)
	if err := a.candWindows(c, st); err != nil {
		return 0, err
	}
	idx := len(c.states)
	c.states = append(c.states, st.Clone())
	c.index[key] = idx
	c.exit = append(c.exit, 0)
	c.edges = append(c.edges, nil)
	return idx, nil
}

// resolveJump resolves the target of a Markovian jump fired in the segment
// interior: goal states absorb, fireable moves cascade immediately (uniform
// choice; clock resets are ineligible here — the firing time is
// exponentially distributed, so a reset would smear the clock valuation),
// and timelocked targets die. Jump times are a.s. interior, so fireability
// is judged on the snapshot's near-zero window shape; every window endpoint
// met along the way subdivides the segment, keeping that judgment constant
// across the interior.
func (a *analyzer) resolveJump(c *closure, resolved map[string][]share, st *network.State, onPath map[string]bool, depth int) ([]share, error) {
	key := st.Key()
	if cached, ok := resolved[key]; ok {
		return cached, nil
	}
	if onPath[key] {
		return nil, fmt.Errorf("zone: cycle of immediate transitions through state %s", key)
	}
	if depth > maxCascade {
		return nil, fmt.Errorf("zone: immediate-transition cascade exceeds %d steps", maxCascade)
	}
	g, err := expr.EvalBool(a.goal, a.rt.Env(st))
	if err != nil {
		return nil, fmt.Errorf("zone: evaluating goal: %w", err)
	}
	if g {
		out := []share{{to: toGoal, p: 1}}
		resolved[key] = out
		return out, nil
	}
	en, d, err := a.fireable(st)
	if err != nil {
		return nil, err
	}
	if len(en) == 0 {
		if d <= timeEps {
			out := []share{{to: toDead, p: 1}}
			resolved[key] = out
			return out, nil
		}
		idx, err := a.intern(c, st)
		if err != nil {
			return nil, err
		}
		out := []share{{to: idx, p: 1}}
		resolved[key] = out
		return out, nil
	}
	// Vanishing: its window shape still subdivides the segment (the
	// fireable set at interior jump times must match the snapshot's).
	if err := a.candWindows(c, st); err != nil {
		return nil, err
	}
	onPath[key] = true
	defer delete(onPath, key)
	acc := make(map[int]float64)
	p := 1 / float64(len(en))
	for i := range en {
		if a.assignsClock(&en[i]) {
			return nil, fmt.Errorf("zone: clock reset on immediate transition %s fired at a stochastic time: %w",
				en[i].Label(a.rt), ErrIneligible)
		}
		succ, err := a.rt.Apply(st, &en[i])
		if err != nil {
			return nil, err
		}
		sub, err := a.resolveJump(c, resolved, &succ, onPath, depth+1)
		if err != nil {
			return nil, err
		}
		for _, w := range sub {
			acc[w.to] += p * w.p
		}
	}
	out := make([]share, 0, len(acc))
	for to, p := range acc {
		out = append(out, share{to: to, p: p})
	}
	resolved[key] = out
	return out, nil
}

// transient pushes the support distribution across delta time units of the
// segment CTMC by uniformization, accumulating goal and dead absorption
// into the analyzer and returning the per-state survivor masses at the
// segment's end.
func (a *analyzer) transient(c *closure, delta float64) ([]float64, error) {
	n := len(c.states)
	goalIdx, deadIdx := n, n+1
	at := func(to int) int {
		switch to {
		case toGoal:
			return goalIdx
		case toDead:
			return deadIdx
		default:
			return to
		}
	}

	pi := make([]float64, n+2)
	for _, s := range c.support {
		pi[s.to] += s.p
	}

	var lambda float64
	for s := 0; s < n; s++ {
		if c.exit[s] > lambda {
			lambda = c.exit[s]
		}
	}
	lt := lambda * delta
	if lt == 0 {
		a.reached += pi[goalIdx]
		a.dead += pi[deadIdx]
		return pi[:n], nil
	}

	// DTMC of the uniformized chain; the two sentinel rows are absorbing.
	probs := make([][]share, n+2)
	for s := 0; s < n; s++ {
		stay := 1.0
		var row []share
		for _, e := range c.edges[s] {
			p := e.p / lambda
			row = append(row, share{to: at(e.to), p: p})
			stay -= p
		}
		if stay > 1e-15 {
			row = append(row, share{to: s, p: stay})
		}
		probs[s] = row
	}
	probs[goalIdx] = []share{{to: goalIdx, p: 1}}
	probs[deadIdx] = []share{{to: deadIdx, p: 1}}

	// Expected distribution at time delta: sum of Poisson-weighted DTMC
	// iterates, computed in log space (cf. ctmc.ReachWithin). The
	// truncated tail is folded into the last iterate so mass is conserved
	// exactly.
	out := make([]float64, n+2)
	next := make([]float64, n+2)
	logW := -lt
	var cum float64
	add := func() {
		w := math.Exp(logW)
		cum += w
		for s := range out {
			out[s] += w * pi[s]
		}
	}
	add()
	maxIter := int(lt + 20*math.Sqrt(lt+1) + 100)
	for k := 1; k <= maxIter && 1-cum > segTail; k++ {
		for s := range next {
			next[s] = 0
		}
		for s := 0; s < n+2; s++ {
			if pi[s] == 0 {
				continue
			}
			for _, e := range probs[s] {
				next[e.to] += pi[s] * e.p
			}
		}
		pi, next = next, pi
		logW += math.Log(lt / float64(k))
		add()
	}
	if rem := 1 - cum; rem > 0 {
		for s := range out {
			out[s] += rem * pi[s]
		}
	}

	a.reached += out[goalIdx]
	a.dead += out[deadIdx]
	return out[:n], nil
}
