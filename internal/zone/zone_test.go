package zone

import (
	"errors"
	"math"
	"testing"

	"slimsim/internal/ctmc"
	"slimsim/internal/expr"
	"slimsim/internal/network"
	"slimsim/internal/sta"
)

func newRT(t *testing.T, net *sta.Network) *network.Runtime {
	t.Helper()
	rt, err := network.New(net)
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func analyze(t *testing.T, rt *network.Runtime, goal expr.Expr, bound float64) *Result {
	t.Helper()
	res, err := Analyze(rt, goal, bound, 0)
	if err != nil {
		t.Fatalf("Analyze(bound=%v): %v", bound, err)
	}
	return res
}

func realLit(v float64) expr.Expr { return expr.Literal(expr.RealVal(v)) }

// chainNet is a single deterministic step: the sole location has invariant
// x <= 2 and an exit guarded by x >= 2 (or x > 2 when strict) that latches
// done.
func chainNet(t *testing.T, strict bool) *network.Runtime {
	x, done := expr.VarID(0), expr.VarID(1)
	op := expr.OpGe
	if strict {
		op = expr.OpGt
	}
	p := &sta.Process{
		Name: "chain",
		Locations: []sta.Location{
			{Name: "s0", Invariant: expr.Bin(expr.OpLe, expr.Var("x", x), realLit(2))},
			{Name: "s1"},
		},
		Initial: 0,
		Transitions: []sta.Transition{
			{From: 0, To: 1, Action: sta.Tau,
				Guard:   expr.Bin(op, expr.Var("x", x), realLit(2)),
				Effects: []sta.Assignment{{Var: done, Name: "done", Expr: expr.True()}}},
		},
		Vars: []expr.VarID{x, done},
	}
	return newRT(t, &sta.Network{
		Processes: []*sta.Process{p},
		Vars: []sta.VarDecl{
			{Name: "x", Type: expr.ClockType(), Init: expr.RealVal(0)},
			{Name: "done", Type: expr.BoolType(), Init: expr.BoolVal(false)},
		},
	})
}

// TestDeterministicChain: the step fires exactly at t = 2, so the
// probability jumps 0 -> 1 at the (inclusive) bound 2.
func TestDeterministicChain(t *testing.T) {
	rt := chainNet(t, false)
	goal := expr.Var("done", 1)
	for _, tc := range []struct {
		bound, want float64
	}{{0, 0}, {1.5, 0}, {2, 1}, {3, 1}} {
		res := analyze(t, rt, goal, tc.bound)
		if math.Abs(res.Probability-tc.want) > 1e-12 {
			t.Errorf("P(done by %v) = %v, want %v", tc.bound, res.Probability, tc.want)
		}
	}
}

// TestStrictGuardTimelock: with guard x > 2 under invariant x <= 2 the
// window never intersects the invariant clip — the engine timelocks at the
// deadline, so the goal is unreachable and all mass dies.
func TestStrictGuardTimelock(t *testing.T) {
	rt := chainNet(t, true)
	res := analyze(t, rt, expr.Var("done", 1), 5)
	if res.Probability != 0 {
		t.Errorf("P = %v, want 0 (timelocked)", res.Probability)
	}
	if math.Abs(res.Dead-1) > 1e-12 {
		t.Errorf("Dead = %v, want 1", res.Dead)
	}
}

// gateNet is the hand-computed exponential-race-vs-clock model: a unit
// fails at rate lambda; a monitor latches alarm immediately while the gate
// is open. The gate closes for good at x = c (and, when reopen is set,
// reopens at x = 2c).
func gateNet(t *testing.T, lambda, c float64, reopen bool) *network.Runtime {
	x, failed, open, alarm := expr.VarID(0), expr.VarID(1), expr.VarID(2), expr.VarID(3)
	unit := &sta.Process{
		Name:      "unit",
		Locations: []sta.Location{{Name: "ok"}, {Name: "down"}},
		Initial:   0,
		Transitions: []sta.Transition{
			{From: 0, To: 1, Action: sta.Tau, Rate: lambda,
				Effects: []sta.Assignment{{Var: failed, Name: "failed", Expr: expr.True()}}},
		},
		Vars: []expr.VarID{failed},
	}
	gate := &sta.Process{
		Name: "gate",
		Locations: []sta.Location{
			{Name: "g0", Invariant: expr.Bin(expr.OpLe, expr.Var("x", x), realLit(c))},
			{Name: "g1"},
		},
		Initial: 0,
		Transitions: []sta.Transition{
			{From: 0, To: 1, Action: sta.Tau,
				Guard:   expr.Bin(expr.OpGe, expr.Var("x", x), realLit(c)),
				Effects: []sta.Assignment{{Var: open, Name: "open", Expr: expr.False()}}},
		},
		Vars: []expr.VarID{x, open},
	}
	if reopen {
		gate.Locations[1].Invariant = expr.Bin(expr.OpLe, expr.Var("x", x), realLit(2*c))
		gate.Locations = append(gate.Locations, sta.Location{Name: "g2"})
		gate.Transitions = append(gate.Transitions, sta.Transition{
			From: 1, To: 2, Action: sta.Tau,
			Guard:   expr.Bin(expr.OpGe, expr.Var("x", x), realLit(2*c)),
			Effects: []sta.Assignment{{Var: open, Name: "open", Expr: expr.True()}},
		})
	}
	monitor := &sta.Process{
		Name:      "monitor",
		Locations: []sta.Location{{Name: "watch"}, {Name: "raised"}},
		Initial:   0,
		Transitions: []sta.Transition{
			{From: 0, To: 1, Action: sta.Tau,
				Guard:   expr.And(expr.Var("failed", failed), expr.Var("open", open)),
				Effects: []sta.Assignment{{Var: alarm, Name: "alarm", Expr: expr.True()}}},
		},
		Vars: []expr.VarID{alarm},
	}
	return newRT(t, &sta.Network{
		Processes: []*sta.Process{unit, gate, monitor},
		Vars: []sta.VarDecl{
			{Name: "x", Type: expr.ClockType(), Init: expr.RealVal(0)},
			{Name: "failed", Type: expr.BoolType(), Init: expr.BoolVal(false)},
			{Name: "open", Type: expr.BoolType(), Init: expr.BoolVal(true)},
			{Name: "alarm", Type: expr.BoolType(), Init: expr.BoolVal(false)},
		},
	})
}

// TestGateWindow: alarms latch only on failures before the gate closes at
// c, so P(alarm by T) = 1 - e^{-lambda * min(c, T)}.
func TestGateWindow(t *testing.T) {
	const lambda, c = 0.8, 2.0
	rt := gateNet(t, lambda, c, false)
	goal := expr.Var("alarm", 3)
	for _, bound := range []float64{0.5, 1, 2, 3.5, 10} {
		res := analyze(t, rt, goal, bound)
		want := 1 - math.Exp(-lambda*math.Min(c, bound))
		if math.Abs(res.Probability-want) > 1e-9 {
			t.Errorf("P(alarm by %v) = %v, want %v", bound, res.Probability, want)
		}
	}
}

// TestAlternatingGateReopen: failures while the gate is closed ([c, 2c))
// stay pending and alarm exactly when it reopens at 2c. Hence
// P(alarm by T) = 1 - e^{-lambda*c} for T in (c, 2c), jumping to
// 1 - e^{-lambda*T} at the (inclusive) reopen boundary and beyond.
func TestAlternatingGateReopen(t *testing.T) {
	const lambda, c = 0.6, 1.5
	rt := gateNet(t, lambda, c, true)
	goal := expr.Var("alarm", 3)
	for _, tc := range []struct {
		bound, want float64
	}{
		{1.0, 1 - math.Exp(-lambda*1.0)},
		{2.9, 1 - math.Exp(-lambda*c)},
		{3.0, 1 - math.Exp(-lambda*3.0)}, // reopen boundary is inclusive
		{10, 1 - math.Exp(-lambda*10)},
	} {
		res := analyze(t, rt, goal, tc.bound)
		if math.Abs(res.Probability-tc.want) > 1e-9 {
			t.Errorf("P(alarm by %v) = %v, want %v", tc.bound, res.Probability, tc.want)
		}
	}
}

// TestBoundaryTie: two moves become fireable at the same boundary; the ASAP
// strategy chooses uniformly, so the winning branch carries exactly 1/2.
func TestBoundaryTie(t *testing.T) {
	x, win := expr.VarID(0), expr.VarID(1)
	guard := func() expr.Expr { return expr.Bin(expr.OpGe, expr.Var("x", x), realLit(1)) }
	p := &sta.Process{
		Name: "tie",
		Locations: []sta.Location{
			{Name: "s0", Invariant: expr.Bin(expr.OpLe, expr.Var("x", x), realLit(1))},
			{Name: "a"}, {Name: "b"},
		},
		Initial: 0,
		Transitions: []sta.Transition{
			{From: 0, To: 1, Action: sta.Tau, Guard: guard(),
				Effects: []sta.Assignment{{Var: win, Name: "win", Expr: expr.True()}}},
			{From: 0, To: 2, Action: sta.Tau, Guard: guard()},
		},
		Vars: []expr.VarID{x, win},
	}
	rt := newRT(t, &sta.Network{
		Processes: []*sta.Process{p},
		Vars: []sta.VarDecl{
			{Name: "x", Type: expr.ClockType(), Init: expr.RealVal(0)},
			{Name: "win", Type: expr.BoolType(), Init: expr.BoolVal(false)},
		},
	})
	goal := expr.Var("win", win)
	if res := analyze(t, rt, goal, 0.5); res.Probability != 0 {
		t.Errorf("P before boundary = %v, want 0", res.Probability)
	}
	res := analyze(t, rt, goal, 2)
	if math.Abs(res.Probability-0.5) > 1e-12 {
		t.Errorf("P = %v, want exactly 1/2", res.Probability)
	}
}

// markovNet is ctmc_test's failure/repair model with an immediate monitor:
// purely Markovian (no clock), so zone and ctmc must agree.
func markovNet(t *testing.T, lambda, mu float64) *network.Runtime {
	failed, alarm := expr.VarID(0), expr.VarID(1)
	unit := &sta.Process{
		Name:      "unit",
		Locations: []sta.Location{{Name: "ok"}, {Name: "failed"}},
		Initial:   0,
		Transitions: []sta.Transition{
			{From: 0, To: 1, Action: sta.Tau, Rate: lambda,
				Effects: []sta.Assignment{{Var: failed, Name: "failed", Expr: expr.True()}}},
			{From: 1, To: 0, Action: sta.Tau, Rate: mu,
				Effects: []sta.Assignment{{Var: failed, Name: "failed", Expr: expr.False()}}},
		},
		Vars: []expr.VarID{failed},
	}
	monitor := &sta.Process{
		Name:      "monitor",
		Locations: []sta.Location{{Name: "watch"}, {Name: "raised"}},
		Initial:   0,
		Transitions: []sta.Transition{
			{From: 0, To: 1, Action: sta.Tau,
				Guard:   expr.Var("failed", failed),
				Effects: []sta.Assignment{{Var: alarm, Name: "alarm", Expr: expr.True()}}},
		},
		Vars: []expr.VarID{alarm},
	}
	return newRT(t, &sta.Network{
		Processes: []*sta.Process{unit, monitor},
		Vars: []sta.VarDecl{
			{Name: "failed", Type: expr.BoolType(), Init: expr.BoolVal(false)},
			{Name: "alarm", Type: expr.BoolType(), Init: expr.BoolVal(false)},
		},
	})
}

// TestMarkovianMatchesCTMC cross-checks the zone analyzer against the CTMC
// oracle (and its closed form) on the untimed fragment, where the whole
// analysis collapses to a single segment.
func TestMarkovianMatchesCTMC(t *testing.T) {
	const lambda, mu = 0.4, 2.0
	rt := markovNet(t, lambda, mu)
	goal := expr.Var("alarm", 1)
	built, err := ctmc.Build(rt, goal, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, bound := range []float64{0, 0.3, 1, 3, 12} {
		res := analyze(t, rt, goal, bound)
		exact, err := built.Chain.ReachWithin(bound, 1e-12)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.Probability-exact) > 1e-9 {
			t.Errorf("bound %v: zone %v vs ctmc %v", bound, res.Probability, exact)
		}
		want := 1 - math.Exp(-lambda*bound)
		if math.Abs(res.Probability-want) > 1e-8 {
			t.Errorf("bound %v: zone %v vs closed form %v", bound, res.Probability, want)
		}
		if res.Segments > 1 {
			t.Errorf("untimed model took %d segments, want at most 1", res.Segments)
		}
	}
}

// TestExponentialRaceAgainstDeadline: unit fails at rate lambda while the
// clock runs toward a hard stop at c that closes the gate (reopening at
// 2c) — the canonical single-clock shape the generator emits, exercising
// uniformization across several segments.
func TestExponentialRaceAgainstDeadline(t *testing.T) {
	const lambda, c = 1.2, 1.0
	rt := gateNet(t, lambda, c, true)
	goal := expr.Var("alarm", 3)
	// Bounds chosen to land inside, at, and past every boundary.
	for _, bound := range []float64{0.25, 1, 1.5, 2, 2.75, 6} {
		res := analyze(t, rt, goal, bound)
		var want float64
		switch {
		case bound <= c:
			want = 1 - math.Exp(-lambda*bound)
		case bound < 2*c:
			want = 1 - math.Exp(-lambda*c)
		default:
			want = 1 - math.Exp(-lambda*bound)
		}
		if math.Abs(res.Probability-want) > 1e-9 {
			t.Errorf("P(alarm by %v) = %v, want %v", bound, res.Probability, want)
		}
	}
}

func TestEligibleRejections(t *testing.T) {
	x := expr.VarID(0)
	mkNet := func(vars []sta.VarDecl, trans ...sta.Transition) *sta.Network {
		p := &sta.Process{
			Name:        "p",
			Locations:   []sta.Location{{Name: "s0"}, {Name: "s1"}},
			Initial:     0,
			Transitions: trans,
		}
		for i := range vars {
			p.Vars = append(p.Vars, expr.VarID(i))
		}
		return &sta.Network{Processes: []*sta.Process{p}, Vars: vars}
	}

	t.Run("continuous variable", func(t *testing.T) {
		rt := newRT(t, mkNet([]sta.VarDecl{
			{Name: "v", Type: expr.ContinuousType(), Init: expr.RealVal(0)},
		}))
		if err := Eligible(rt, expr.True()); !errors.Is(err, ErrIneligible) {
			t.Errorf("want ErrIneligible, got %v", err)
		}
	})
	t.Run("two clocks", func(t *testing.T) {
		rt := newRT(t, mkNet([]sta.VarDecl{
			{Name: "x", Type: expr.ClockType(), Init: expr.RealVal(0)},
			{Name: "y", Type: expr.ClockType(), Init: expr.RealVal(0)},
		}))
		if err := Eligible(rt, expr.True()); !errors.Is(err, ErrIneligible) {
			t.Errorf("want ErrIneligible, got %v", err)
		}
	})
	t.Run("timed goal", func(t *testing.T) {
		rt := newRT(t, mkNet([]sta.VarDecl{
			{Name: "x", Type: expr.ClockType(), Init: expr.RealVal(0)},
		}))
		goal := expr.Bin(expr.OpGe, expr.Var("x", x), realLit(1))
		if err := Eligible(rt, goal); !errors.Is(err, ErrIneligible) {
			t.Errorf("want ErrIneligible, got %v", err)
		}
	})
	t.Run("timed goal through flow", func(t *testing.T) {
		rt := newRT(t, mkNet([]sta.VarDecl{
			{Name: "x", Type: expr.ClockType(), Init: expr.RealVal(0)},
			{Name: "late", Type: expr.BoolType(), Init: expr.BoolVal(false),
				Flow: true, FlowExpr: expr.Bin(expr.OpGe, expr.Var("x", x), realLit(1))},
		}))
		if err := Eligible(rt, expr.Var("late", 1)); !errors.Is(err, ErrIneligible) {
			t.Errorf("want ErrIneligible, got %v", err)
		}
	})
	t.Run("clock reset at stochastic time", func(t *testing.T) {
		rt := newRT(t, mkNet([]sta.VarDecl{
			{Name: "x", Type: expr.ClockType(), Init: expr.RealVal(0)},
			{Name: "hit", Type: expr.BoolType(), Init: expr.BoolVal(false)},
		}, sta.Transition{From: 0, To: 1, Action: sta.Tau, Rate: 1,
			Effects: []sta.Assignment{{Var: x, Name: "x", Expr: realLit(0)}}}))
		if err := Eligible(rt, expr.Var("hit", 1)); err != nil {
			t.Fatalf("Eligible should pass (reset detected during analysis): %v", err)
		}
		if _, err := Analyze(rt, expr.Var("hit", 1), 5, 0); !errors.Is(err, ErrIneligible) {
			t.Errorf("want ErrIneligible from Analyze, got %v", err)
		}
	})
}

// TestBoundaryClockReset: a reset fired at a deterministic boundary is
// legal — the cycler loops every c time units and latches the goal on its
// k-th lap, so the probability is a step function of the bound.
func TestBoundaryClockReset(t *testing.T) {
	x, laps, done := expr.VarID(0), expr.VarID(1), expr.VarID(2)
	const c = 1.0
	p := &sta.Process{
		Name: "cycler",
		Locations: []sta.Location{
			{Name: "run", Invariant: expr.Bin(expr.OpLe, expr.Var("x", x), realLit(c))},
			{Name: "halt"},
		},
		Initial: 0,
		Transitions: []sta.Transition{
			{From: 0, To: 0, Action: sta.Tau,
				Guard: expr.And(
					expr.Bin(expr.OpGe, expr.Var("x", x), realLit(c)),
					expr.Bin(expr.OpLt, expr.Var("laps", laps), expr.Literal(expr.IntVal(3)))),
				Effects: []sta.Assignment{
					{Var: x, Name: "x", Expr: realLit(0)},
					{Var: laps, Name: "laps", Expr: expr.Bin(expr.OpAdd, expr.Var("laps", laps), expr.Literal(expr.IntVal(1)))},
				}},
			{From: 0, To: 1, Action: sta.Tau,
				Guard: expr.And(
					expr.Bin(expr.OpGe, expr.Var("x", x), realLit(c)),
					expr.Bin(expr.OpGe, expr.Var("laps", laps), expr.Literal(expr.IntVal(3)))),
				Effects: []sta.Assignment{{Var: done, Name: "done", Expr: expr.True()}}},
		},
		Vars: []expr.VarID{x, laps, done},
	}
	rt := newRT(t, &sta.Network{
		Processes: []*sta.Process{p},
		Vars: []sta.VarDecl{
			{Name: "x", Type: expr.ClockType(), Init: expr.RealVal(0)},
			{Name: "laps", Type: expr.IntType(), Init: expr.IntVal(0)},
			{Name: "done", Type: expr.BoolType(), Init: expr.BoolVal(false)},
		},
	})
	goal := expr.Var("done", done)
	for _, tc := range []struct {
		bound, want float64
	}{{3.5, 0}, {4, 1}, {9, 1}} {
		res := analyze(t, rt, goal, tc.bound)
		if math.Abs(res.Probability-tc.want) > 1e-12 {
			t.Errorf("P(done by %v) = %v, want %v", tc.bound, res.Probability, tc.want)
		}
	}
}
