package bisim_test

import (
	"testing"

	"slimsim/internal/bisim"
	"slimsim/internal/casestudy"
	"slimsim/internal/ctmc"
	"slimsim/internal/model"
	"slimsim/internal/network"
	"slimsim/internal/slim"
)

// table1Chain builds the explicit sensor-filter chain at the given
// redundancy — the exact workload Lump faces in the Table I pipeline
// (4095 states lumping to 37 blocks at n = 6).
func table1Chain(tb testing.TB, n int) *ctmc.CTMC {
	tb.Helper()
	src, err := casestudy.SensorFilter(casestudy.DefaultSensorFilter(n))
	if err != nil {
		tb.Fatal(err)
	}
	parsed, err := slim.Parse(src)
	if err != nil {
		tb.Fatal(err)
	}
	built, err := model.Instantiate(parsed)
	if err != nil {
		tb.Fatal(err)
	}
	rt, err := network.New(built.Net)
	if err != nil {
		tb.Fatal(err)
	}
	goal, err := built.CompileExpr(casestudy.SensorFilterGoal)
	if err != nil {
		tb.Fatal(err)
	}
	br, err := ctmc.Build(rt, goal, 1<<20)
	if err != nil {
		tb.Fatal(err)
	}
	return br.Chain
}

// BenchmarkLump measures partition refinement on the Table I chain; the
// numeric-signature rewrite is pinned against the old string-rendered
// signatures in docs/PERFORMANCE.md.
func BenchmarkLump(b *testing.B) {
	chain := table1Chain(b, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := bisim.Lump(chain)
		if err != nil {
			b.Fatal(err)
		}
		if res.Blocks != 37 {
			b.Fatalf("blocks = %d, want 37", res.Blocks)
		}
	}
}
