package bisim

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"slimsim/internal/ctmc"
)

func TestLumpSymmetricBranches(t *testing.T) {
	// Two identical parallel branches 0→{1,2}→3; states 1 and 2 are
	// bisimilar and must collapse.
	c := &ctmc.CTMC{
		Edges: [][]ctmc.Edge{
			{{To: 1, Rate: 1}, {To: 2, Rate: 1}},
			{{To: 3, Rate: 2}},
			{{To: 3, Rate: 2}},
			nil,
		},
		Initial: []float64{1, 0, 0, 0},
		Goal:    []bool{false, false, false, true},
	}
	res, err := Lump(c)
	if err != nil {
		t.Fatalf("Lump: %v", err)
	}
	if res.Blocks != 3 {
		t.Errorf("blocks = %d, want 3 (states 1 and 2 lumped)", res.Blocks)
	}
	if res.BlockOf[1] != res.BlockOf[2] {
		t.Error("bisimilar states 1 and 2 not lumped")
	}
	if res.BlockOf[0] == res.BlockOf[3] {
		t.Error("initial and goal states wrongly lumped")
	}
}

func TestLumpRespectsLabels(t *testing.T) {
	// Identical dynamics but different labels must not lump.
	c := &ctmc.CTMC{
		Edges: [][]ctmc.Edge{
			{{To: 1, Rate: 1}, {To: 2, Rate: 1}},
			nil,
			nil,
		},
		Initial: []float64{1, 0, 0},
		Goal:    []bool{false, true, false},
	}
	res, err := Lump(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlockOf[1] == res.BlockOf[2] {
		t.Error("states with different labels lumped")
	}
}

func TestLumpDistinguishesRates(t *testing.T) {
	// Same structure, different rates into the goal: no lumping.
	c := &ctmc.CTMC{
		Edges: [][]ctmc.Edge{
			{{To: 1, Rate: 1}, {To: 2, Rate: 1}},
			{{To: 3, Rate: 1}},
			{{To: 3, Rate: 5}},
			nil,
		},
		Initial: []float64{1, 0, 0, 0},
		Goal:    []bool{false, false, false, true},
	}
	res, err := Lump(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.BlockOf[1] == res.BlockOf[2] {
		t.Error("states with different exit rates lumped")
	}
}

func TestLumpPreservesReachability(t *testing.T) {
	c := &ctmc.CTMC{
		Edges: [][]ctmc.Edge{
			{{To: 1, Rate: 0.5}, {To: 2, Rate: 0.5}},
			{{To: 3, Rate: 2}, {To: 0, Rate: 1}},
			{{To: 3, Rate: 2}, {To: 0, Rate: 1}},
			nil,
		},
		Initial: []float64{1, 0, 0, 0},
		Goal:    []bool{false, false, false, true},
	}
	res, err := Lump(c)
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range []float64{0.5, 1, 4} {
		orig, err := c.ReachWithin(tb, 1e-10)
		if err != nil {
			t.Fatal(err)
		}
		lumped, err := res.Quotient.ReachWithin(tb, 1e-10)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(orig-lumped) > 1e-8 {
			t.Errorf("t=%v: original %v vs quotient %v", tb, orig, lumped)
		}
	}
}

// randomChain builds a small random CTMC with goal labels.
func randomChain(r *rand.Rand) *ctmc.CTMC {
	n := 2 + r.Intn(6)
	c := &ctmc.CTMC{
		Edges:   make([][]ctmc.Edge, n),
		Initial: make([]float64, n),
		Goal:    make([]bool, n),
	}
	c.Initial[0] = 1
	for s := 0; s < n; s++ {
		c.Goal[s] = r.Intn(4) == 0
		k := r.Intn(3)
		for j := 0; j < k; j++ {
			// Quantized rates make accidental lumpability common,
			// exercising the refinement loop harder.
			rate := float64(1+r.Intn(4)) / 2
			c.Edges[s] = append(c.Edges[s], ctmc.Edge{To: r.Intn(n), Rate: rate})
		}
	}
	return c
}

// TestQuickLumpPreservesTransientMeasure is the key soundness property of
// the Sigref stand-in: for arbitrary chains the quotient must give the same
// time-bounded reachability probability.
func TestQuickLumpPreservesTransientMeasure(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		c := randomChain(r)
		res, err := Lump(c)
		if err != nil {
			return false
		}
		if res.Blocks > c.NumStates() {
			return false
		}
		for _, tb := range []float64{0.3, 1.7} {
			orig, err1 := c.ReachWithin(tb, 1e-11)
			lumped, err2 := res.Quotient.ReachWithin(tb, 1e-11)
			if err1 != nil || err2 != nil {
				return false
			}
			if math.Abs(orig-lumped) > 1e-7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLumpAllSameLabel(t *testing.T) {
	c := &ctmc.CTMC{
		Edges:   [][]ctmc.Edge{{{To: 1, Rate: 1}}, {{To: 0, Rate: 1}}},
		Initial: []float64{1, 0},
		Goal:    []bool{false, false},
	}
	res, err := Lump(c)
	if err != nil {
		t.Fatal(err)
	}
	if res.Blocks != 1 {
		t.Errorf("blocks = %d, want 1 (fully symmetric unlabeled chain)", res.Blocks)
	}
}

func TestLumpEmptyChainRejected(t *testing.T) {
	if _, err := Lump(&ctmc.CTMC{}); err == nil {
		t.Error("expected error for empty chain")
	}
}
