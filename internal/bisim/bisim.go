// Package bisim implements CTMC lumping by partition refinement — the role
// the Sigref library plays in the paper's baseline tool-chain (§IV): the
// explicit chain produced by state-space generation is reduced to its
// bisimulation quotient before numerical analysis, preserving time-bounded
// reachability probabilities.
//
// The algorithm is the classic rate-signature refinement: start from the
// partition induced by the goal labeling, then repeatedly split blocks
// whose states have different cumulative rates into some block, until
// stable. The result is ordinary (strong) lumpability, which suffices for
// the transient measures checked here.
package bisim

import (
	"fmt"
	"math"
	"sort"

	"slimsim/internal/ctmc"
)

// Result is the quotient chain together with the state-to-block mapping.
type Result struct {
	// Quotient is the lumped CTMC.
	Quotient *ctmc.CTMC
	// BlockOf maps each original state to its block index.
	BlockOf []int
	// Blocks is the number of equivalence classes.
	Blocks int
}

// Lump computes the coarsest ordinary-lumpability partition of c that
// respects the goal labeling, and returns the quotient chain.
func Lump(c *ctmc.CTMC) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	n := c.NumStates()
	if n == 0 {
		return nil, fmt.Errorf("bisim: empty chain")
	}

	// Initial partition: goal vs non-goal.
	blockOf := make([]int, n)
	for s := 0; s < n; s++ {
		if c.Goal[s] {
			blockOf[s] = 1
		}
	}
	numBlocks := 2
	// Degenerate labelings still need at least one block.
	if allSame(c.Goal) {
		for s := range blockOf {
			blockOf[s] = 0
		}
		numBlocks = 1
	}

	// Refine until stable. Each iteration computes every state's
	// signature — its old block plus the sorted (target block, cumulative
	// rate) pairs — as a numeric slice in one shared arena, hashes it
	// (FNV-1a over the raw words), and assigns new block ids by exact
	// comparison within hash buckets. Rates enter the signature quantized
	// to 40 significant mantissa bits (~12 decimal digits, matching the
	// "%.12g" string rendering this replaced): cumulative rates of
	// bisimilar states can disagree in the final ulps because the
	// explicit chain lists their edges in different orders, and comparing
	// them exactly would shatter the blocks. The difftest exact tier
	// bounds the error this tolerance can introduce.
	var (
		entries    []sigEntry // signature arena, reused across iterations
		starts     = make([]int32, n+1)
		hashes     = make([]uint64, n)
		newBlockOf = make([]int, n)
		acc        = make(map[int]float64) // per-state block→rate scratch
		blocks     []int                   // sorted acc keys scratch
	)
	for {
		entries = entries[:0]
		for s := 0; s < n; s++ {
			starts[s] = int32(len(entries))
			for _, e := range c.Edges[s] {
				acc[blockOf[e.To]] += e.Rate
			}
			blocks = blocks[:0]
			for b := range acc {
				blocks = append(blocks, b)
			}
			sort.Ints(blocks)
			h := fnvMix(fnvOffset, uint64(blockOf[s]))
			for _, b := range blocks {
				mant, exp := quantize(acc[b])
				entries = append(entries, sigEntry{block: int32(b), exp: int32(exp), mant: mant})
				h = fnvMix(h, uint64(b))
				h = fnvMix(h, uint64(mant))
				h = fnvMix(h, uint64(int64(exp)))
				delete(acc, b)
			}
			hashes[s] = h
		}
		starts[n] = int32(len(entries))

		bucket := make(map[uint64][]int, numBlocks)
		nextID := 0
		for s := 0; s < n; s++ {
			id := -1
			for _, r := range bucket[hashes[s]] {
				if blockOf[s] == blockOf[r] && sigEqual(entries, starts, s, r) {
					id = newBlockOf[r]
					break
				}
			}
			if id < 0 {
				id = nextID
				nextID++
				bucket[hashes[s]] = append(bucket[hashes[s]], s)
			}
			newBlockOf[s] = id
		}
		stable := nextID == numBlocks
		copy(blockOf, newBlockOf)
		numBlocks = nextID
		if stable {
			break
		}
	}

	// Build the quotient: rates from a representative of each block.
	q := &ctmc.CTMC{
		Edges:   make([][]ctmc.Edge, numBlocks),
		Initial: make([]float64, numBlocks),
		Goal:    make([]bool, numBlocks),
	}
	repr := make([]int, numBlocks)
	for i := range repr {
		repr[i] = -1
	}
	for s := 0; s < n; s++ {
		b := blockOf[s]
		q.Initial[b] += c.Initial[s]
		q.Goal[b] = c.Goal[s]
		if repr[b] == -1 {
			repr[b] = s
		}
	}
	for b := 0; b < numBlocks; b++ {
		acc := make(map[int]float64)
		for _, e := range c.Edges[repr[b]] {
			acc[blockOf[e.To]] += e.Rate
		}
		targets := make([]int, 0, len(acc))
		for t := range acc {
			targets = append(targets, t)
		}
		sort.Ints(targets)
		for _, t := range targets {
			q.Edges[b] = append(q.Edges[b], ctmc.Edge{To: t, Rate: acc[t]})
		}
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("bisim: quotient invalid: %w", err)
	}
	return &Result{Quotient: q, BlockOf: blockOf, Blocks: numBlocks}, nil
}

// sigEntry is one (target block, cumulative rate) component of a state's
// refinement signature, with the rate in quantized mantissa/exponent form.
type sigEntry struct {
	block, exp int32
	mant       int64
}

// quantize rounds r to 40 significant mantissa bits. Signatures compare
// rates at this relative precision so that ulp-level noise from edge
// ordering cannot split bisimilar states.
func quantize(r float64) (int64, int) {
	mant, exp := math.Frexp(r)
	return int64(math.Round(mant * (1 << 40))), exp
}

// FNV-1a constants, applied word-wise rather than byte-wise: the mix only
// routes states into buckets, equality is always reverified exactly.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func fnvMix(h, v uint64) uint64 { return (h ^ v) * fnvPrime }

// sigEqual reports whether states s and r have identical signature slices
// in the shared arena.
func sigEqual(entries []sigEntry, starts []int32, s, r int) bool {
	ss, se := starts[s], starts[s+1]
	rs, re := starts[r], starts[r+1]
	if se-ss != re-rs {
		return false
	}
	for i := int32(0); i < se-ss; i++ {
		if entries[ss+i] != entries[rs+i] {
			return false
		}
	}
	return true
}

func allSame(xs []bool) bool {
	for _, x := range xs {
		if x != xs[0] {
			return false
		}
	}
	return true
}
