// Package bisim implements CTMC lumping by partition refinement — the role
// the Sigref library plays in the paper's baseline tool-chain (§IV): the
// explicit chain produced by state-space generation is reduced to its
// bisimulation quotient before numerical analysis, preserving time-bounded
// reachability probabilities.
//
// The algorithm is the classic rate-signature refinement: start from the
// partition induced by the goal labeling, then repeatedly split blocks
// whose states have different cumulative rates into some block, until
// stable. The result is ordinary (strong) lumpability, which suffices for
// the transient measures checked here.
package bisim

import (
	"fmt"
	"sort"

	"slimsim/internal/ctmc"
)

// Result is the quotient chain together with the state-to-block mapping.
type Result struct {
	// Quotient is the lumped CTMC.
	Quotient *ctmc.CTMC
	// BlockOf maps each original state to its block index.
	BlockOf []int
	// Blocks is the number of equivalence classes.
	Blocks int
}

// Lump computes the coarsest ordinary-lumpability partition of c that
// respects the goal labeling, and returns the quotient chain.
func Lump(c *ctmc.CTMC) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	n := c.NumStates()
	if n == 0 {
		return nil, fmt.Errorf("bisim: empty chain")
	}

	// Initial partition: goal vs non-goal.
	blockOf := make([]int, n)
	for s := 0; s < n; s++ {
		if c.Goal[s] {
			blockOf[s] = 1
		}
	}
	numBlocks := 2
	// Degenerate labelings still need at least one block.
	if allSame(c.Goal) {
		for s := range blockOf {
			blockOf[s] = 0
		}
		numBlocks = 1
	}

	// Refine until stable.
	for {
		type sig struct {
			old   int
			rates string
		}
		sigOf := make([]sig, n)
		for s := 0; s < n; s++ {
			sigOf[s] = sig{old: blockOf[s], rates: signature(c, s, blockOf)}
		}
		next := make(map[sig]int)
		newBlockOf := make([]int, n)
		for s := 0; s < n; s++ {
			id, ok := next[sigOf[s]]
			if !ok {
				id = len(next)
				next[sigOf[s]] = id
			}
			newBlockOf[s] = id
		}
		if len(next) == numBlocks {
			blockOf = newBlockOf
			numBlocks = len(next)
			break
		}
		blockOf = newBlockOf
		numBlocks = len(next)
	}

	// Build the quotient: rates from a representative of each block.
	q := &ctmc.CTMC{
		Edges:   make([][]ctmc.Edge, numBlocks),
		Initial: make([]float64, numBlocks),
		Goal:    make([]bool, numBlocks),
	}
	repr := make([]int, numBlocks)
	for i := range repr {
		repr[i] = -1
	}
	for s := 0; s < n; s++ {
		b := blockOf[s]
		q.Initial[b] += c.Initial[s]
		q.Goal[b] = c.Goal[s]
		if repr[b] == -1 {
			repr[b] = s
		}
	}
	for b := 0; b < numBlocks; b++ {
		acc := make(map[int]float64)
		for _, e := range c.Edges[repr[b]] {
			acc[blockOf[e.To]] += e.Rate
		}
		targets := make([]int, 0, len(acc))
		for t := range acc {
			targets = append(targets, t)
		}
		sort.Ints(targets)
		for _, t := range targets {
			q.Edges[b] = append(q.Edges[b], ctmc.Edge{To: t, Rate: acc[t]})
		}
	}
	if err := q.Validate(); err != nil {
		return nil, fmt.Errorf("bisim: quotient invalid: %w", err)
	}
	return &Result{Quotient: q, BlockOf: blockOf, Blocks: numBlocks}, nil
}

// signature renders state s's cumulative rates into current blocks as a
// canonical string.
func signature(c *ctmc.CTMC, s int, blockOf []int) string {
	acc := make(map[int]float64)
	for _, e := range c.Edges[s] {
		acc[blockOf[e.To]] += e.Rate
	}
	blocks := make([]int, 0, len(acc))
	for b := range acc {
		blocks = append(blocks, b)
	}
	sort.Ints(blocks)
	var out []byte
	for _, b := range blocks {
		out = fmt.Appendf(out, "%d:%.12g;", b, acc[b])
	}
	return string(out)
}

func allSame(xs []bool) bool {
	for _, x := range xs {
		if x != xs[0] {
			return false
		}
	}
	return true
}
