// The CompiledModel/Session split: everything expensive about an analysis
// (parse → instantiate → abstract interpretation → expression compilation)
// is captured in an immutable, content-addressed CompiledModel that many
// concurrent analyses can share, while every run-specific thing (the
// compiled property, resolved configuration, telemetry collector) lives in
// a throwaway Session. The slimserve daemon keys its compiled-model cache
// on CompiledModel.Hash; the CLIs go through the same two types via
// Model.Analyze.
package slimsim

import (
	"crypto/sha256"
	"encoding/hex"

	"slimsim/internal/absint"
	"slimsim/internal/model"
	"slimsim/internal/network"
	"slimsim/internal/prop"
	"slimsim/internal/sim"
	"slimsim/internal/slim"
	"slimsim/internal/telemetry"
)

// CompiledModel is the immutable compile artifact of one SLIM source text:
// the instantiated model, the executable network runtime and the
// abstract-interpretation fixpoint. It is safe for concurrent use — the
// runtime is read-only after construction and every worker evaluates
// through its own scratch arena — and is identified by a content hash of
// the source and the load options, so equal sources compile to
// interchangeable values.
type CompiledModel struct {
	hash     string
	built    *model.Built
	rt       *network.Runtime
	analysis *absint.Result
}

// ContentHash returns the cache key Compile assigns to src under opts:
// "sha256:" followed by the hex digest of the source text and the load
// configuration. Equal keys guarantee interchangeable CompiledModels.
func ContentHash(src string, opts ...LoadOption) string {
	var cfg loadConfig
	for _, o := range opts {
		o(&cfg)
	}
	h := sha256.New()
	h.Write([]byte("slimsim-model-v1\x00"))
	if cfg.noPrune {
		h.Write([]byte("noprune\x00"))
	}
	h.Write([]byte(src))
	return "sha256:" + hex.EncodeToString(h.Sum(nil))
}

// Compile parses, instantiates and statically analyzes SLIM source text,
// returning the shareable compile artifact. LoadModel is Compile plus the
// Model wrapper.
func Compile(src string, opts ...LoadOption) (*CompiledModel, error) {
	var cfg loadConfig
	for _, o := range opts {
		o(&cfg)
	}
	parsed, err := slim.Parse(src)
	if err != nil {
		return nil, err
	}
	built, err := model.Instantiate(parsed)
	if err != nil {
		return nil, err
	}
	rt, err := network.New(built.Net)
	if err != nil {
		return nil, err
	}
	cm := &CompiledModel{
		hash:     ContentHash(src, opts...),
		built:    built,
		rt:       rt,
		analysis: absint.Analyze(rt),
	}
	if !cfg.noPrune {
		if mask, any := cm.analysis.PruneMask(); any {
			if err := rt.Prune(mask); err != nil {
				return nil, err
			}
		}
	}
	return cm, nil
}

// Hash returns the content hash identifying this compile artifact.
func (c *CompiledModel) Hash() string { return c.hash }

// Model wraps the compile artifact in the user-facing analysis API.
func (c *CompiledModel) Model() *Model { return &Model{CompiledModel: c} }

// Session is one Monte Carlo analysis run bound to a compiled model: the
// property compiled against the model's declarations plus the fully
// resolved run configuration (strategy, accuracy, seed, workers,
// telemetry). Sessions are cheap — creating one performs no sampling — and
// single-use; any number of sessions may run concurrently against the same
// CompiledModel.
type Session struct {
	model *Model
	prop  prop.Property
	cfg   sim.AnalysisConfig
	text  string
}

// NewSession compiles the property described by opts and resolves the run
// configuration, reporting option errors before any sampling starts.
func (m *Model) NewSession(opts Options) (*Session, error) {
	p, err := m.CompileProperty(opts)
	if err != nil {
		return nil, err
	}
	cfg, err := m.analysisConfig(opts, p)
	if err != nil {
		return nil, err
	}
	if opts.Telemetry != nil {
		opts.Telemetry.SetRun(telemetry.RunInfo{Property: propertyText(opts)})
	}
	return &Session{model: m, prop: p, cfg: cfg, text: propertyText(opts)}, nil
}

// PropertyText renders the session's property in the pattern notation used
// by reports and cache keys.
func (s *Session) PropertyText() string { return s.text }

// Run executes the session's Monte Carlo analysis.
func (s *Session) Run() (Report, error) {
	return sim.Analyze(s.model.rt, s.cfg)
}
