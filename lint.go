package slimsim

import (
	"fmt"
	"os"

	"slimsim/internal/lint"
)

// Diagnostic is one static-analysis finding; see the Diag type of the lint
// package and docs/LINT.md for the code table.
type Diagnostic = lint.Diag

// Severity classifies a Diagnostic.
type Severity = lint.Severity

// Diagnostic severities.
const (
	SeverityWarning = lint.SevWarning
	SeverityError   = lint.SevError
)

// Lint statically analyzes SLIM source text without simulating it and
// returns the positioned diagnostics, sorted by source position. Models
// with error-severity diagnostics either fail to load or crash the
// simulator at analysis time; warnings flag likely modeling mistakes the
// simulator tolerates.
func Lint(src string) []Diagnostic { return lint.RunSource(src) }

// LintFile reads a SLIM model from a file and lints it. The error reports
// I/O problems only; model defects come back as diagnostics.
func LintFile(path string) ([]Diagnostic, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("slimsim: %w", err)
	}
	return Lint(string(data)), nil
}

// LintWithProperty lints src like Lint and additionally checks the given
// property pattern (e.g. "P(<> [0,100] failure)") against the abstract
// interpretation of the model: unparsable or non-compiling patterns come
// back as SL701 errors, and properties whose probability is a foregone
// conclusion (exactly 0 or 1 for any rates and clocks) as SL701 warnings.
func LintWithProperty(src, pattern string) []Diagnostic {
	return lint.RunSourceWithProperty(src, pattern)
}

// LintFileWithProperty reads a SLIM model from a file and lints it with a
// property pattern; see LintWithProperty.
func LintFileWithProperty(path, pattern string) ([]Diagnostic, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("slimsim: %w", err)
	}
	return LintWithProperty(string(data), pattern), nil
}

// HasLintErrors reports whether diags contains an error-severity
// diagnostic.
func HasLintErrors(diags []Diagnostic) bool { return lint.HasErrors(diags) }
