// Command nopanic is a repo-local vet pass: it forbids new panic calls in
// the engine packages that run inside sampling workers, where a panic
// escapes the per-path error handling and kills the whole analysis. The
// two historical panics (both argument-validation guards with dedicated
// recover paths) are allowlisted by message; anything else fails the run.
//
// It deliberately depends only on the standard library so it can run in
// the hermetic CI container, which has no module cache beyond the repo:
//
//	go run ./tools/analyzers/nopanic internal/rng internal/stats ...
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

// allowed lists the panic messages that predate this check and have
// documented recover paths. A new panic must not be added here without
// wiring the matching recover; see docs/TESTING.md ("panic hygiene").
var allowed = []string{
	"rng: Exp requires a positive rate",
	"stats: quantile argument",
}

func main() {
	dirs := os.Args[1:]
	if len(dirs) == 0 {
		fmt.Fprintln(os.Stderr, "usage: nopanic dir [dir ...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range dirs {
		n, err := checkDir(dir)
		if err != nil {
			fmt.Fprintln(os.Stderr, "nopanic:", err)
			os.Exit(2)
		}
		bad += n
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "nopanic: %d forbidden panic call(s); engine packages must return errors instead\n", bad)
		os.Exit(1)
	}
}

// checkDir parses every non-test Go file in dir (non-recursively, matching
// a Go package) and reports disallowed panic calls on stderr, returning
// their count.
func checkDir(dir string) (int, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return 0, err
	}
	fset := token.NewFileSet()
	bad := 0
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		path := filepath.Join(dir, name)
		f, err := parser.ParseFile(fset, path, nil, 0)
		if err != nil {
			return 0, err
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); !ok || id.Name != "panic" {
				return true
			}
			if allowedCall(call) {
				return true
			}
			pos := fset.Position(call.Pos())
			fmt.Fprintf(os.Stderr, "%s: forbidden panic in engine package\n", pos)
			bad++
			return true
		})
	}
	return bad, nil
}

// allowedCall reports whether the panic's argument textually contains one
// of the allowlisted messages — as a string literal, or as a literal
// nested inside a call such as fmt.Sprintf.
func allowedCall(call *ast.CallExpr) bool {
	if len(call.Args) != 1 {
		return false
	}
	found := false
	ast.Inspect(call.Args[0], func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		for _, msg := range allowed {
			if strings.Contains(lit.Value, msg) {
				found = true
			}
		}
		return true
	})
	return found
}
