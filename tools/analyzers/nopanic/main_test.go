package main

import (
	"os"
	"path/filepath"
	"testing"
)

func write(t *testing.T, dir, name, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestCheckDir(t *testing.T) {
	dir := t.TempDir()
	write(t, dir, "ok.go", `package p
func f() error { return nil }
`)
	write(t, dir, "allowed.go", `package p
import "fmt"
func g(p float64) {
	panic(fmt.Sprintf("stats: quantile argument %g out of (0,1)", p))
}
func h() { panic("rng: Exp requires a positive rate") }
`)
	write(t, dir, "skip_test.go", `package p
func t() { panic("panics in tests are fine") }
`)
	if n, err := checkDir(dir); err != nil || n != 0 {
		t.Fatalf("clean dir: got %d bad, err %v; want 0, nil", n, err)
	}

	write(t, dir, "bad.go", `package p
func b() { panic("engine: unexpected state") }
func c() { panic(42) }
`)
	if n, err := checkDir(dir); err != nil || n != 2 {
		t.Fatalf("dirty dir: got %d bad, err %v; want 2, nil", n, err)
	}
}

// TestEnginePackagesClean runs the analyzer against the real guarded
// packages, so the allowlist and the code can never drift apart silently.
func TestEnginePackagesClean(t *testing.T) {
	for _, dir := range []string{"internal/rng", "internal/stats", "internal/network", "internal/sim"} {
		n, err := checkDir(filepath.Join("..", "..", "..", dir))
		if err != nil {
			t.Fatalf("%s: %v", dir, err)
		}
		if n != 0 {
			t.Errorf("%s: %d forbidden panic call(s)", dir, n)
		}
	}
}
