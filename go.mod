module slimsim

go 1.22
