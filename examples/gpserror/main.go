// GPS error model: the paper's Listing 2 / Fig. 2 — a unit that suffers
// transient, hot, and permanent faults governed by exponential rates, where
// a transient fault repairs itself after a non-deterministic delay in
// [200, 300] msec and a hot fault recovers on restart. The example checks
// the probability that the unit is delivering a (correct) measurement
// continuously degraded within a mission window, and shows the effect of
// the repair-scheduling strategy.
package main

import (
	"fmt"
	"os"

	"slimsim"
)

// gpsWithErrors extends a simple GPS with the Listing 2 error model. Rates
// are scaled up from the paper's 0.1/hour so the effects are visible on a
// short horizon (the paper applies the same trick in §V-c).
const gpsWithErrors = `
-- Nominal model: a GPS delivering a measurement flag.
device GPS
features
  restart: in event port;
  measurement: out data port bool default true;
end GPS;

device implementation GPS.Imp
modes
  active: initial mode;
transitions
  active -[restart]-> active;
end GPS.Imp;

system Sat
end Sat;

system implementation Sat.Imp
subcomponents
  gps: device GPS.Imp;
end Sat.Imp;

-- Error model (paper Listing 2): transient, hot and permanent faults.
error model GPSErrors
states
  ok: initial state;
  transient: state;
  hot: state;
  permanent: state;
end GPSErrors;

error model implementation GPSErrors.Imp
events
  e_trans: error event occurrence poisson 0.02;
  e_hot: error event occurrence poisson 0.01;
  e_perm: error event occurrence poisson 0.002;
  repair: error event;
  restart_ev: reset event;
transitions
  ok -[e_trans]-> transient;
  ok -[e_hot]-> hot;
  ok -[e_perm]-> permanent;
  transient -[repair after 200 msec .. 300 msec]-> ok;
  hot -[restart_ev]-> ok;
end GPSErrors.Imp;

root Sat.Imp;

extend gps with GPSErrors.Imp reset on restart {
  inject transient: measurement := false;
  inject hot: measurement := false;
  inject permanent: measurement := false;
}
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gpserror:", err)
		os.Exit(1)
	}
}

func run() error {
	m, err := slimsim.LoadModel(gpsWithErrors)
	if err != nil {
		return err
	}
	fmt.Printf("GPS + error model: %d processes (nominal + error automaton)\n\n", m.NumProcesses())

	// Fig. 2's non-determinism: the repair fires somewhere in
	// [200, 300] msec after the transient fault; the @activation-style
	// restart clears hot faults.
	fmt.Println("P(measurement lost at some point within 100 s):")
	for _, strat := range []string{"asap", "progressive", "local", "maxtime"} {
		rep, err := m.Analyze(slimsim.Options{
			Goal:     "not gps.measurement",
			Bound:    100,
			Strategy: strat,
			Delta:    0.05,
			Epsilon:  0.01,
			Workers:  4,
			Seed:     2,
		})
		if err != nil {
			return err
		}
		fmt.Printf("  %-12s P = %.3f   (deadlocks=%d, timelocks=%d)\n",
			strat, rep.Probability, rep.Deadlocks, rep.Timelocks)
	}

	fmt.Println()
	fmt.Println("P(GPS in the permanent error state within 100 s):")
	rep, err := m.Analyze(slimsim.Options{
		Goal:     "gps.@err in modes (permanent)",
		Bound:    100,
		Strategy: "progressive",
		Delta:    0.05,
		Epsilon:  0.01,
		Workers:  4,
		Seed:     2,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  progressive  P = %.3f\n", rep.Probability)
	fmt.Println("  (below the 1 - exp(-0.002*100) = 0.181 upper bound: permanent faults")
	fmt.Println("   can only arm while the unit is in the ok state)")

	fmt.Println()
	fmt.Println("P(measurement stays up for the whole window) — invariance pattern:")
	rep, err = m.Analyze(slimsim.Options{
		Kind:     slimsim.Invariance,
		Goal:     "gps.measurement",
		Bound:    50,
		Strategy: "progressive",
		Delta:    0.05,
		Epsilon:  0.01,
		Workers:  4,
		Seed:     2,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  progressive  P = %.3f\n", rep.Probability)
	return nil
}
