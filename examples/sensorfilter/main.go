// Sensor-filter benchmark (paper §IV, Fig. 3): redundant sensors feed
// redundant filters; a monitor distinguishes the two failure signatures
// (out-of-range sensor value vs. zero filter output) and switches to the
// next redundant unit, until one kind is exhausted and the system is down.
//
// This example runs both analysis flows of the paper on the same model —
// the pre-existing CTMC pipeline (state space → lumping → uniformization)
// and the Monte Carlo simulator — and compares their answers and costs,
// which is exactly the Table I experiment at one size.
package main

import (
	"fmt"
	"math"
	"os"

	"slimsim"
	"slimsim/internal/casestudy"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sensorfilter:", err)
		os.Exit(1)
	}
}

func run() error {
	const (
		redundancy = 3
		bound      = 150.0
	)
	src, err := casestudy.SensorFilter(casestudy.DefaultSensorFilter(redundancy))
	if err != nil {
		return err
	}
	fmt.Printf("Generated SLIM model with %d redundant sensors and filters (%d bytes of source).\n\n",
		redundancy, len(src))

	m, err := slimsim.LoadModel(src)
	if err != nil {
		return err
	}
	fmt.Printf("Instantiated: %d processes, %d variables.\n\n", m.NumProcesses(), m.NumVars())

	// Numerical flow (NuSMV → Sigref → MRMC stand-in).
	ctmcRep, err := m.CheckCTMC(casestudy.SensorFilterGoal, bound, 1<<20)
	if err != nil {
		return err
	}
	fmt.Printf("CTMC pipeline:  P = %.5f\n", ctmcRep.Probability)
	fmt.Printf("  %d tangible states (of %d explored), lumped to %d blocks\n",
		ctmcRep.States, ctmcRep.Explored, ctmcRep.LumpedStates)
	fmt.Printf("  build %s, lump %s, solve %s\n\n",
		ctmcRep.BuildTime.Round(1e6), ctmcRep.LumpTime.Round(1e6), ctmcRep.SolveTime.Round(1e6))

	// Monte Carlo flow.
	simRep, err := m.Analyze(slimsim.Options{
		Goal:     casestudy.SensorFilterGoal,
		Bound:    bound,
		Strategy: "asap", // maximal progress matches the untimed semantics
		Delta:    0.05,
		Epsilon:  0.01,
		Workers:  4,
		Seed:     1,
	})
	if err != nil {
		return err
	}
	fmt.Printf("Simulator:      P = %.5f  (%d paths in %s)\n",
		simRep.Probability, simRep.Paths, simRep.Elapsed.Round(1e6))
	diff := math.Abs(simRep.Probability - ctmcRep.Probability)
	fmt.Printf("\n|difference| = %.5f (must be within ε = 0.01 at confidence 0.95)\n", diff)
	if diff > 0.01 {
		fmt.Println("NOTE: outside ε — this happens with probability at most δ.")
	}
	return nil
}
