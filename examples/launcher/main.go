// Launcher case study (paper §V, Fig. 4/5): an abstract but realistic
// launcher design by Airbus Defence and Space — PCDUs with linearly
// draining batteries, redundant GPS/gyro navigation, two DPU triplexes and
// thrusters, with transient/hot/permanent fault models woven in by fault
// injection. The mission fails when neither triplex can command its
// thruster.
//
// Run with -describe to print the architecture; otherwise the example
// sweeps the property bound like Fig. 5 and prints one curve per strategy
// for both fault variants.
package main

import (
	"flag"
	"fmt"
	"os"

	"slimsim"
	"slimsim/internal/casestudy"
)

func main() {
	describe := flag.Bool("describe", false, "print the architecture and generated model")
	flag.Parse()
	if err := run(*describe); err != nil {
		fmt.Fprintln(os.Stderr, "launcher:", err)
		os.Exit(1)
	}
}

func run(describe bool) error {
	if describe {
		src, err := casestudy.Launcher(casestudy.DefaultLauncher(casestudy.FaultsRecoverable))
		if err != nil {
			return err
		}
		fmt.Println("Architecture (paper Fig. 4):")
		fmt.Println("  power:      pcdu1, pcdu2 (battery: continuous energy, derive -1.0)")
		fmt.Println("  navigation: gps1, gps2, gyro1, gyro2 -> nav combiner")
		fmt.Println("  processing: dpu11..dpu13 -> tri1, dpu21..dpu23 -> tri2 (2-of-3 vote)")
		fmt.Println("  actuation:  tri1 -> thr1, tri2 -> thr2")
		fmt.Println("  faults:     batteries/sensors permanent; DPUs hot with restart window")
		fmt.Println()
		fmt.Println("Generated SLIM source:")
		fmt.Println(src)
		return nil
	}

	for _, mode := range []casestudy.FaultMode{casestudy.FaultsPermanent, casestudy.FaultsRecoverable} {
		src, err := casestudy.Launcher(casestudy.DefaultLauncher(mode))
		if err != nil {
			return err
		}
		m, err := slimsim.LoadModel(src)
		if err != nil {
			return err
		}
		fmt.Printf("=== %s DPU faults (%d processes, %d variables) ===\n",
			mode, m.NumProcesses(), m.NumVars())
		fmt.Printf("%-8s %10s %12s %8s %10s\n", "u", "asap", "progressive", "local", "maxtime")
		for _, u := range []float64{300, 600, 900} {
			fmt.Printf("%-8.0f", u)
			for _, strat := range []string{"asap", "progressive", "local", "maxtime"} {
				rep, err := m.Analyze(slimsim.Options{
					Goal:     casestudy.LauncherGoal,
					Bound:    u,
					Strategy: strat,
					Delta:    0.05,
					Epsilon:  0.02,
					Workers:  4,
					Seed:     1,
				})
				if err != nil {
					return err
				}
				fmt.Printf(" %10.3f", rep.Probability)
			}
			fmt.Println()
		}
		switch mode {
		case casestudy.FaultsPermanent:
			fmt.Println("-> strategies coincide: only probabilistic/deterministic timing (Fig. 5 left)")
		case casestudy.FaultsRecoverable:
			fmt.Println("-> ASAP repairs too early (worst), MaxTime never does (best),")
			fmt.Println("   Progressive/Local in between (Fig. 5 right)")
		}
		fmt.Println()
	}
	return nil
}
