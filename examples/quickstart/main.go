// Quickstart: the paper's Listing 1 — a simplified GPS unit that acquires
// a signal within two minutes (but no faster than ten seconds) and then
// reports a fix. We ask: what is the probability that a fix is obtained
// within 60 seconds? The answer depends entirely on how the scheduler
// resolves the non-deterministic acquisition time — which is the paper's
// central point about strategies.
package main

import (
	"fmt"
	"os"

	"slimsim"
)

// gpsModel is Listing 1 in this reproduction's SLIM subset. The activate
// event arrives from the environment (an unconnected in event port fires
// freely); acquisition takes between 10 s and 2 min.
const gpsModel = `
system GPS
features
  activate: in event port;
  measurement: out data port bool default false;
end GPS;

system implementation GPS.Imp
subcomponents
  x: data clock;
modes
  acquisition: initial mode while x <= 2 min;
  active: mode;
transitions
  acquisition -[activate when x >= 10 sec then measurement := true]-> active;
end GPS.Imp;

root GPS.Imp;
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	m, err := slimsim.LoadModel(gpsModel)
	if err != nil {
		return err
	}
	fmt.Printf("GPS model: %d process(es), %d variable(s)\n\n", m.NumProcesses(), m.NumVars())
	fmt.Println("P(fix within 60 s) under each strategy:")
	fmt.Println("  (acquisition is non-deterministic in [10 s, 120 s])")
	for _, strat := range []string{"asap", "progressive", "local", "maxtime"} {
		rep, err := m.Analyze(slimsim.Options{
			Goal:     "measurement",
			Bound:    60,
			Strategy: strat,
			Delta:    0.05,
			Epsilon:  0.01,
			Seed:     1,
		})
		if err != nil {
			return err
		}
		fmt.Printf("  %-12s P = %.3f   (%d paths, %s)\n",
			strat, rep.Probability, rep.Paths, rep.Elapsed.Round(1e6))
	}
	fmt.Println()
	fmt.Println("ASAP fires at 10 s (always in time, P = 1); MaxTime waits until 120 s")
	fmt.Println("(never in time, P = 0); Progressive samples uniformly from [10, 120]")
	fmt.Println("(P = 50/110 ≈ 0.45); Local samples from [0, 120] and retries below 10 s.")
	return nil
}
