// Lockcheck: using the MaxTime strategy and the strict lock policy to hunt
// for actionlocks, the use the paper highlights for MaxTime (§III-B) and
// the deadlock handling of §III-D.
//
// The model is a two-phase valve controller: the controller must command
// the valve while a pressure window is open; if it procrastinates past the
// window (which is exactly what MaxTime explores), the system timelocks —
// no transition can ever fire again, and the invariant stops time.
package main

import (
	"fmt"
	"os"

	"slimsim"
)

// valveModel has a genuine scheduling hazard: the command window [2, 5] is
// strictly inside the invariant bound (8), so a scheduler that waits too
// long strands the controller. ASAP and Progressive never see it; MaxTime
// finds it on every path.
const valveModel = `
system Controller
features
  commanded: out data port bool default false;
end Controller;

system implementation Controller.Imp
subcomponents
  x: data clock;
modes
  armed: initial mode while x <= 8.0;
  done: mode;
transitions
  armed -[when x >= 2.0 and x <= 5.0 then commanded := true]-> done;
end Controller.Imp;

root Controller.Imp;
`

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "lockcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	m, err := slimsim.LoadModel(valveModel)
	if err != nil {
		return err
	}

	fmt.Println("Valve controller: command window [2,5], invariant bound 8.")
	fmt.Println()

	// Step 1: under the default policy, locked paths falsify the
	// property, so MaxTime reports probability 0 with all paths
	// timelocked — a smell worth investigating.
	for _, strat := range []string{"asap", "progressive", "maxtime"} {
		rep, err := m.Analyze(slimsim.Options{
			Goal:     "commanded",
			Bound:    10,
			Strategy: strat,
			Delta:    0.05,
			Epsilon:  0.05,
			Seed:     1,
		})
		if err != nil {
			return err
		}
		fmt.Printf("  %-12s P = %.3f  (timelocks on %d of %d paths)\n",
			strat, rep.Probability, rep.Timelocks, rep.Paths)
	}

	// Step 2: with the strict policy the lock becomes a hard error and
	// the offending time is reported.
	fmt.Println()
	fmt.Println("Re-running MaxTime with -on-lock error:")
	_, err = m.Analyze(slimsim.Options{
		Goal:     "commanded",
		Bound:    10,
		Strategy: "maxtime",
		Delta:    0.05,
		Epsilon:  0.05,
		Seed:     1,
		OnLock:   "error",
	})
	if err == nil {
		return fmt.Errorf("expected the strict policy to flag the timelock")
	}
	fmt.Printf("  analysis aborted as intended: %v\n", err)

	// Step 3: inspect one offending path.
	fmt.Println()
	fmt.Println("One MaxTime trace (the scheduler waits past the window):")
	traces, err := m.Simulate(slimsim.Options{
		Goal: "commanded", Bound: 10, Strategy: "maxtime", Seed: 1,
	}, 1)
	if err != nil {
		return err
	}
	for _, ev := range traces[0].Events {
		fmt.Println("   ", ev)
	}
	fmt.Printf("  -> %s\n", traces[0].Termination)
	return nil
}
