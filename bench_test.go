package slimsim

// Benchmark harness regenerating the paper's experiments (see
// EXPERIMENTS.md for the mapping):
//
//   - BenchmarkTable1CTMC / BenchmarkTable1Simulator — Table I: the
//     baseline pipeline's cost explodes with the redundancy degree while
//     the simulator's cost is flat in model size.
//   - BenchmarkFig5Permanent / BenchmarkFig5Recoverable — Fig. 5: strategy
//     sweeps on the launcher case study.
//   - BenchmarkGenerators — the Chernoff–Hoeffding vs sequential-generator
//     ablation (paper §III-A future work).
//   - BenchmarkParallelScaling — the §III-C fair parallelization.
//   - BenchmarkFrontend / BenchmarkPath — infrastructure costs.
//
// Run: go test -bench=. -benchmem
// The human-readable row/series printer lives in cmd/slimbench.

import (
	"fmt"
	"testing"

	"slimsim/internal/casestudy"
)

// loadSensorFilter builds the Table I model at a redundancy degree.
func loadSensorFilter(b *testing.B, size int) *Model {
	b.Helper()
	src, err := casestudy.SensorFilter(casestudy.DefaultSensorFilter(size))
	if err != nil {
		b.Fatal(err)
	}
	m, err := LoadModel(src)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// loadLauncher builds the Fig. 5 model for a fault mode.
func loadLauncher(b *testing.B, mode casestudy.FaultMode) *Model {
	b.Helper()
	src, err := casestudy.Launcher(casestudy.DefaultLauncher(mode))
	if err != nil {
		b.Fatal(err)
	}
	m, err := LoadModel(src)
	if err != nil {
		b.Fatal(err)
	}
	return m
}

// BenchmarkTable1CTMC measures the baseline flow (state space → lumping →
// uniformization) per model size. Expect super-linear growth in both time
// and allocations — the left half of Table I.
func BenchmarkTable1CTMC(b *testing.B) {
	for _, size := range []int{2, 4, 6} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			m := loadSensorFilter(b, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := m.CheckCTMC(casestudy.SensorFilterGoal, 150, 1<<21)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.States), "states")
				b.ReportMetric(float64(rep.LumpedStates), "lumped")
			}
		})
	}
}

// BenchmarkTable1Simulator measures the Monte Carlo flow per model size at
// fixed (δ, ε). Expect near-flat cost in model size (the path count is
// fixed a priori by the Chernoff–Hoeffding bound) — the right half of
// Table I.
func BenchmarkTable1Simulator(b *testing.B) {
	for _, size := range []int{2, 4, 6, 8} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			m := loadSensorFilter(b, size)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rep, err := m.Analyze(Options{
					Goal: casestudy.SensorFilterGoal, Bound: 150,
					Strategy: "asap", Delta: 0.05, Epsilon: 0.05,
					Workers: 4, Seed: uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.Paths), "paths")
			}
		})
	}
}

// BenchmarkFig5Permanent sweeps the strategies on the permanent-fault
// launcher; the estimated probabilities (reported as a metric) must
// coincide across strategies.
func BenchmarkFig5Permanent(b *testing.B) {
	m := loadLauncher(b, casestudy.FaultsPermanent)
	for _, strat := range []string{"asap", "progressive", "local", "maxtime"} {
		b.Run(strat, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := m.Analyze(Options{
					Goal: casestudy.LauncherGoal, Bound: 600,
					Strategy: strat, Delta: 0.05, Epsilon: 0.05,
					Workers: 4, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.Probability, "P")
			}
		})
	}
}

// BenchmarkFig5Recoverable sweeps the strategies on the recoverable-fault
// launcher; the reported P metric separates: asap > progressive ≈ local >
// maxtime.
func BenchmarkFig5Recoverable(b *testing.B) {
	m := loadLauncher(b, casestudy.FaultsRecoverable)
	for _, strat := range []string{"asap", "progressive", "local", "maxtime"} {
		b.Run(strat, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := m.Analyze(Options{
					Goal: casestudy.LauncherGoal, Bound: 600,
					Strategy: strat, Delta: 0.05, Epsilon: 0.05,
					Workers: 4, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(rep.Probability, "P")
			}
		})
	}
}

// BenchmarkGenerators compares the sample-count generators at equal
// accuracy targets; the paths metric shows the sequential methods' savings.
func BenchmarkGenerators(b *testing.B) {
	m := loadSensorFilter(b, 2)
	for _, method := range []string{"chernoff", "gauss", "chow-robbins"} {
		b.Run(method, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				rep, err := m.Analyze(Options{
					Goal: casestudy.SensorFilterGoal, Bound: 150,
					Strategy: "asap", Delta: 0.05, Epsilon: 0.02, Method: method,
					Workers: 1, Seed: uint64(i + 1),
				})
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(float64(rep.Paths), "paths")
			}
		})
	}
}

// BenchmarkParallelScaling measures the fair round-based collector's
// speed-up with worker count (paper §III-C).
func BenchmarkParallelScaling(b *testing.B) {
	m := loadSensorFilter(b, 4)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_, err := m.Analyze(Options{
					Goal: casestudy.SensorFilterGoal, Bound: 150,
					Strategy: "asap", Delta: 0.05, Epsilon: 0.05,
					Workers: workers, Seed: 1,
				})
				if err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFrontend measures parsing plus instantiation of the generated
// launcher model (≈ the size of the paper's 800-line case study).
func BenchmarkFrontend(b *testing.B) {
	src, err := casestudy.Launcher(casestudy.DefaultLauncher(casestudy.FaultsRecoverable))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := LoadModel(src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPath measures the cost of generating a single path through the
// launcher model — the simulator's unit of work.
func BenchmarkPath(b *testing.B) {
	m := loadLauncher(b, casestudy.FaultsRecoverable)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// A one-worker analysis at a very loose accuracy performs few
		// paths; divide the measured time by the paths metric.
		rep, err := m.Analyze(Options{
			Goal: casestudy.LauncherGoal, Bound: 600,
			Strategy: "progressive", Delta: 0.4, Epsilon: 0.4,
			Workers: 1, Seed: uint64(i + 1),
		})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(rep.TotalSteps)/float64(rep.Paths), "steps/path")
	}
}
